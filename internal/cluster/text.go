// Package cluster implements the vulnerability-description clustering
// pipeline of the Lazarus Risk manager (paper §4.1/§5.1): descriptions are
// tokenized and converted to TF-IDF vectors over the 200 most relevant
// words (rarer words receiving higher weights), then grouped with K-means,
// with the number of clusters chosen by the elbow method. Vulnerabilities
// in the same cluster are treated as potentially exploitable by variations
// of the same attack even when NVD lists them against different products.
package cluster

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// stopwords are common English words and CVE boiler-plate terms that carry
// no similarity signal.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "before": true, "by": true, "can": true, "could": true,
	"do": true, "doe": true, "due": true, "earlier": true, "for": true,
	"from": true, "ha": true, "have": true, "in": true, "into": true,
	"is": true, "it": true, "its": true, "may": true, "might": true,
	"not": true, "of": true, "on": true, "or": true, "other": true,
	"than": true, "that": true, "the": true, "then": true, "there": true,
	"this": true, "through": true, "to": true, "use": true, "user": true,
	"users": true, "via": true, "versions": true, "version": true,
	"vulnerability": true, "vulnerabilities": true, "when": true,
	"which": true, "while": true, "with": true, "wa": true, "were": true,
	"will": true, "would": true, "allow": true, "allows": true,
	"attacker": true, "attackers": true, "aka": true,
}

// Tokenize splits a vulnerability description into canonical-form tokens:
// lower-cased, punctuation-stripped, stopwords removed, and lightly
// stemmed (plural and -ing/-ed suffixes folded), mirroring the "convert
// all words to a canonical form" step of the paper.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' && r != '.'
	})
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		f = strings.Trim(f, "-.")
		if len(f) < 2 {
			continue
		}
		// Skip pure numbers and version-like tokens; they identify
		// releases, not weakness classes.
		if isVersionLike(f) {
			continue
		}
		f = stem(f)
		if stopwords[f] || len(f) < 2 {
			continue
		}
		out = append(out, f)
	}
	return out
}

func isVersionLike(s string) bool {
	hasDigit := false
	for _, r := range s {
		if unicode.IsLetter(r) {
			return false
		}
		if unicode.IsDigit(r) {
			hasDigit = true
		}
	}
	return hasDigit
}

// stem applies a tiny suffix-folding stemmer: enough to map
// "scripting"/"scripts"/"scripted" onto one canonical token without
// pulling in a full Porter implementation.
func stem(w string) string {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		return w[:len(w)-3]
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "es") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
		return w[:len(w)-1]
	default:
		return w
	}
}

// Vocabulary maps each retained term to its vector dimension and inverse
// document frequency weight.
type Vocabulary struct {
	// Terms is the retained vocabulary in dimension order.
	Terms []string
	// Index maps a term to its dimension.
	Index map[string]int
	// IDF is the inverse-document-frequency weight per dimension; rarer
	// terms get higher weights (paper: "less frequent words are given
	// higher weights").
	IDF []float64
}

// MaxVocabulary is the vocabulary cap used by the paper ("up to 200
// words").
const MaxVocabulary = 200

// BuildVocabulary tokenizes every document and retains the maxTerms most
// frequent terms (document frequency), assigning each an IDF weight
// log(1 + N/df) computed over the corpus. maxTerms <= 0 selects
// MaxVocabulary.
func BuildVocabulary(docs []string, maxTerms int) *Vocabulary {
	if maxTerms <= 0 {
		maxTerms = MaxVocabulary
	}
	df := make(map[string]int)
	for _, d := range docs {
		seen := make(map[string]bool)
		for _, tok := range Tokenize(d) {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	type tf struct {
		term string
		df   int
	}
	terms := make([]tf, 0, len(df))
	for t, n := range df {
		terms = append(terms, tf{t, n})
	}
	// Most frequent first; ties broken lexicographically for determinism.
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].df != terms[j].df {
			return terms[i].df > terms[j].df
		}
		return terms[i].term < terms[j].term
	})
	if len(terms) > maxTerms {
		terms = terms[:maxTerms]
	}
	v := &Vocabulary{
		Terms: make([]string, len(terms)),
		Index: make(map[string]int, len(terms)),
		IDF:   make([]float64, len(terms)),
	}
	n := float64(len(docs))
	for i, t := range terms {
		v.Terms[i] = t.term
		v.Index[t.term] = i
		v.IDF[i] = logIDF(n, float64(t.df))
	}
	return v
}

func logIDF(n, df float64) float64 {
	// log(1 + N/df): bounded below by log 2 > 0, grows as the term gets
	// rarer.
	return math.Log(1 + n/df)
}

// Vectorize converts a document to its TF-IDF vector over the vocabulary,
// L2-normalized so K-means distances compare description shape rather than
// length. Documents with no in-vocabulary terms yield a zero vector.
func (v *Vocabulary) Vectorize(doc string) []float64 {
	vec := make([]float64, len(v.Terms))
	for _, tok := range Tokenize(doc) {
		if i, ok := v.Index[tok]; ok {
			vec[i]++
		}
	}
	var norm float64
	for i := range vec {
		vec[i] *= v.IDF[i]
		norm += vec[i] * vec[i]
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i] /= norm
		}
	}
	return vec
}

// VectorizeAll converts every document.
func (v *Vocabulary) VectorizeAll(docs []string) [][]float64 {
	out := make([][]float64, len(docs))
	for i, d := range docs {
		out[i] = v.Vectorize(d)
	}
	return out
}
