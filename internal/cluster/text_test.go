package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Cross-site scripting (XSS) vulnerability in OpenStack Dashboard " +
		"(Horizon) 8.0.1 and earlier allows remote authenticated users to inject " +
		"arbitrary web script or HTML.")
	want := map[string]bool{
		"cross-site": true, "script": true, "xss": true, "openstack": true,
		"dashboard": true, "horizon": true, "remote": true, "authenticat": true,
		"inject": true, "arbitrary": true, "web": true, "html": true,
	}
	for _, tok := range got {
		if tok == "vulnerability" || tok == "allows" || tok == "and" {
			t.Errorf("stopword %q survived", tok)
		}
		if tok == "8.0.1" {
			t.Error("version token survived")
		}
	}
	for w := range want {
		if !containsTok(got, w) {
			t.Errorf("token %q missing from %v", w, got)
		}
	}
}

func containsTok(ts []string, w string) bool {
	for _, t := range ts {
		if t == w {
			return true
		}
	}
	return false
}

func TestStemFoldsVariants(t *testing.T) {
	cases := map[string]string{
		"scripting": "script", "scripts": "script",
		"vulnerabilities": "vulnerability",
		"injected":        "inject",
		"pass":            "pass", // no ss-stripping
		"dashboard":       "dashboard",
	}
	for in, want := range cases {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBuildVocabularyCapAndIDF(t *testing.T) {
	docs := []string{
		"buffer overflow in kernel driver",
		"buffer overflow in network stack",
		"use after free in kernel scheduler",
		"cross-site scripting in dashboard",
	}
	v := BuildVocabulary(docs, 3)
	if len(v.Terms) != 3 {
		t.Fatalf("vocabulary size = %d, want 3", len(v.Terms))
	}
	full := BuildVocabulary(docs, 0)
	// "kernel" and "buffer" appear in 2 docs, "dashboard" in 1:
	// rarer term must get strictly higher IDF.
	iKernel, ok1 := full.Index["kernel"]
	iDash, ok2 := full.Index["dashboard"]
	if !ok1 || !ok2 {
		t.Fatalf("expected terms missing from vocabulary %v", full.Terms)
	}
	if full.IDF[iDash] <= full.IDF[iKernel] {
		t.Errorf("IDF(dashboard)=%v not > IDF(kernel)=%v", full.IDF[iDash], full.IDF[iKernel])
	}
}

func TestVectorizeNormalized(t *testing.T) {
	docs := []string{
		"buffer overflow in kernel",
		"cross-site scripting in web dashboard",
	}
	v := BuildVocabulary(docs, 0)
	vec := v.Vectorize(docs[0])
	var norm float64
	for _, x := range vec {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("vector norm^2 = %v, want 1", norm)
	}
	zero := v.Vectorize("completely unrelated ")
	for _, x := range zero {
		if x != 0 {
			t.Fatalf("out-of-vocabulary doc vector not zero: %v", zero)
		}
	}
}

func TestVectorizeDeterministicProperty(t *testing.T) {
	docs := []string{
		"heap corruption in tcp stack", "stack overflow in parser",
		"double free in allocator", "race condition in filesystem",
	}
	v := BuildVocabulary(docs, 0)
	f := func(pick uint8) bool {
		d := docs[int(pick)%len(docs)]
		a, b := v.Vectorize(d), v.Vectorize(d)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
