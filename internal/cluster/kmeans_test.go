package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs returns well-separated point clouds around (0,0) and (10,10).
func twoBlobs(n int, rng *rand.Rand) ([][]float64, []int) {
	vectors := make([][]float64, 0, 2*n)
	truth := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		vectors = append(vectors, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
		truth = append(truth, 0)
		vectors = append(vectors, []float64{10 + rng.NormFloat64()*0.5, 10 + rng.NormFloat64()*0.5})
		truth = append(truth, 1)
	}
	return vectors, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vectors, truth := twoBlobs(50, rng)
	res, err := KMeans(vectors, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// All members of each true blob must share one assignment.
	label0 := res.Assignment[0]
	for i, a := range res.Assignment {
		want := label0
		if truth[i] == 1 {
			want = 1 - label0
		}
		if a != want {
			t.Fatalf("vector %d assigned %d, want %d", i, a, want)
		}
	}
	if res.WCSS <= 0 {
		t.Errorf("WCSS = %v, want positive for noisy blobs", res.WCSS)
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(nil, 1, rng); err == nil {
		t.Error("empty input accepted")
	}
	v := [][]float64{{1}, {2}}
	if _, err := KMeans(v, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(v, 3, rng); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KMeans(v, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, 1, rng); err == nil {
		t.Error("ragged vectors accepted")
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	vectors, _ := twoBlobs(30, rand.New(rand.NewSource(5)))
	a, err := KMeans(vectors, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(vectors, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("assignments differ at %d for equal seeds", i)
		}
	}
	if a.WCSS != b.WCSS {
		t.Errorf("WCSS differs: %v vs %v", a.WCSS, b.WCSS)
	}
}

// TestKMeansInvariants: every vector gets a cluster in range, every cluster
// id below k is meaningful, and WCSS is non-negative and non-increasing
// in k (weakly, since k-means++ is randomized we allow tiny slack).
func TestKMeansInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vectors, _ := twoBlobs(20, rng)
		k := int(kRaw)%8 + 1
		res, err := KMeans(vectors, k, rng)
		if err != nil {
			return false
		}
		if len(res.Assignment) != len(vectors) || res.WCSS < 0 {
			return false
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func TestKMeansKEqualsNPerfect(t *testing.T) {
	vectors := [][]float64{{0, 0}, {5, 5}, {9, 1}, {1, 9}}
	res, err := KMeans(vectors, 4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.WCSS != 0 {
		t.Errorf("k=n WCSS = %v, want 0", res.WCSS)
	}
	seen := make(map[int]bool)
	for _, a := range res.Assignment {
		if seen[a] {
			t.Fatalf("cluster %d reused when k=n", a)
		}
		seen[a] = true
	}
}

func TestElbowKFindsKnee(t *testing.T) {
	// Three well-separated blobs: elbow should land near k=3.
	rng := rand.New(rand.NewSource(17))
	var vectors [][]float64
	centers := [][2]float64{{0, 0}, {20, 0}, {0, 20}}
	for _, c := range centers {
		for i := 0; i < 30; i++ {
			vectors = append(vectors, []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
		}
	}
	k, wcss, err := ElbowK(vectors, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 || k > 4 {
		t.Errorf("ElbowK = %d, want near 3 (wcss=%v)", k, wcss)
	}
	for i := 1; i < len(wcss); i++ {
		// WCSS should broadly decrease with k for blob data.
		if wcss[i] > wcss[0] {
			t.Errorf("wcss[%d]=%v exceeds wcss[0]=%v", i, wcss[i], wcss[0])
		}
	}
}

func TestElbowKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := ElbowK([][]float64{{1}}, 0, rng); err == nil {
		t.Error("maxK=0 accepted")
	}
	k, _, err := ElbowK([][]float64{{1}, {2}}, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if k > 2 {
		t.Errorf("ElbowK = %d for 2 vectors", k)
	}
	// Identical points: flat curve, should not panic and picks some k.
	same := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	if _, _, err := ElbowK(same, 4, rng); err != nil {
		t.Errorf("ElbowK on identical points: %v", err)
	}
}
