package cluster

import (
	"fmt"
	"testing"
	"time"

	"lazarus/internal/osint"
)

func vuln(id, desc string, products ...string) *osint.Vulnerability {
	return &osint.Vulnerability{
		ID:          id,
		Description: desc,
		Products:    products,
		Published:   time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
		CVSS:        6.1,
	}
}

// table1Corpus reproduces paper Table 1: three XSS vulnerabilities in
// OpenStack Horizon reported against different OSes, plus unrelated
// vulnerabilities of other weakness classes.
func table1Corpus() []*osint.Vulnerability {
	return []*osint.Vulnerability{
		vuln("CVE-2014-0157",
			"Cross-site scripting (XSS) vulnerability in the Horizon Orchestration "+
				"dashboard in OpenStack Dashboard (aka Horizon) 2013.2 before 2013.2.4 "+
				"and icehouse before icehouse-rc2 allows remote attackers to inject "+
				"arbitrary web script or HTML via the description field of a Heat template.",
			"opensuse:leap:13.1"),
		vuln("CVE-2015-3988",
			"Multiple cross-site scripting (XSS) vulnerabilities in OpenStack "+
				"Dashboard (Horizon) 2015.1.0 allow remote authenticated users to "+
				"inject arbitrary web script or HTML via the metadata to a Glance "+
				"image, Nova flavor or Host Aggregate.",
			"oracle:solaris:11.2"),
		vuln("CVE-2016-4428",
			"Cross-site scripting (XSS) vulnerability in OpenStack Dashboard "+
				"(Horizon) 8.0.1 and earlier and 9.0.0 through 9.0.1 allows remote "+
				"authenticated users to inject arbitrary web script or HTML by "+
				"injecting an AngularJS template in a dashboard form.",
			"debian:debian_linux:8.0"),
		vuln("CVE-2017-1000364",
			"An issue was discovered in the size of the stack guard page on Linux, "+
				"specifically a 4k stack guard page is not sufficiently large and can "+
				"be jumped over, the stack guard page bypass affects memory management.",
			"canonical:ubuntu_linux:16.04"),
		vuln("CVE-2017-0144",
			"The SMBv1 server in Microsoft Windows allows remote code execution "+
				"via crafted packets related to improper handling of certain requests.",
			"microsoft:windows_10:-"),
		vuln("CVE-2018-1111",
			"DHCP packages as shipped are vulnerable to a command injection flaw in "+
				"the NetworkManager integration script included in the DHCP client.",
			"redhat:enterprise_linux:7.0"),
		vuln("CVE-2018-0959",
			"A remote code execution vulnerability exists when Windows Hyper-V on a "+
				"host server fails to properly validate input from an authenticated "+
				"user on a guest operating system.",
			"microsoft:windows_10:-"),
		vuln("CVE-2016-9999",
			"Heap-based buffer overflow in the kernel network driver allows local "+
				"users to gain privileges via a crafted ioctl call on the device.",
			"freebsd:freebsd:11.0"),
	}
}

func TestBuildGroupsTable1XSSTogether(t *testing.T) {
	corpus := table1Corpus()
	clusters, err := Build(corpus, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !clusters.SameCluster("CVE-2014-0157", "CVE-2015-3988") ||
		!clusters.SameCluster("CVE-2015-3988", "CVE-2016-4428") {
		t.Errorf("Table 1 XSS trio split across clusters: %v", clusters.ByCVE)
	}
	// The XSS cluster must not swallow clearly different weaknesses.
	if clusters.SameCluster("CVE-2014-0157", "CVE-2017-0144") &&
		clusters.SameCluster("CVE-2014-0157", "CVE-2016-9999") &&
		clusters.SameCluster("CVE-2014-0157", "CVE-2018-1111") {
		t.Errorf("clustering degenerated to one big cluster (k=%d)", clusters.K)
	}
}

func TestBuildFixedK(t *testing.T) {
	corpus := table1Corpus()
	clusters, err := Build(corpus, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if clusters.K != 3 {
		t.Fatalf("K = %d, want 3", clusters.K)
	}
	total := 0
	for _, members := range clusters.Members {
		total += len(members)
	}
	if total != len(corpus) {
		t.Errorf("clusters cover %d CVEs, want %d", total, len(corpus))
	}
	for _, v := range corpus {
		if _, ok := clusters.ClusterOf(v.ID); !ok {
			t.Errorf("%s missing from assignment", v.ID)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	corpus := table1Corpus()
	a, err := Build(corpus, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(corpus, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Fatalf("K differs across equal-seed runs: %d vs %d", a.K, b.K)
	}
	for cve, c := range a.ByCVE {
		if b.ByCVE[cve] != c {
			t.Errorf("%s assigned %d vs %d across equal-seed runs", cve, c, b.ByCVE[cve])
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestBuildKClampedToCorpus(t *testing.T) {
	corpus := table1Corpus()[:2]
	clusters, err := Build(corpus, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clusters.K > 2 {
		t.Errorf("K = %d exceeds corpus size 2", clusters.K)
	}
}

func TestSameClusterUnknownCVE(t *testing.T) {
	clusters, err := Build(table1Corpus(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clusters.SameCluster("CVE-2014-0157", "CVE-9999-1") {
		t.Error("SameCluster true for unknown CVE")
	}
}

func TestBuildScalesToLargerCorpus(t *testing.T) {
	classes := []string{
		"cross-site scripting vulnerability in web dashboard allows remote script injection",
		"buffer overflow in kernel driver allows local privilege escalation via crafted ioctl",
		"denial of service in network stack via malformed packet flood remote crash",
		"sql injection in database layer allows remote query manipulation and data disclosure",
	}
	var corpus []*osint.Vulnerability
	for i := 0; i < 120; i++ {
		class := classes[i%len(classes)]
		corpus = append(corpus, vuln(
			fmt.Sprintf("CVE-2018-%04d", i+1),
			fmt.Sprintf("%s variant %d", class, i),
			"canonical:ubuntu_linux:16.04"))
	}
	clusters, err := Build(corpus, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if clusters.K < 2 {
		t.Errorf("elbow picked K = %d for clearly multi-class corpus", clusters.K)
	}
	// Same-class descriptions should overwhelmingly co-cluster: check the
	// first two members of each class.
	for c := 0; c < len(classes); c++ {
		a := fmt.Sprintf("CVE-2018-%04d", c+1)
		b := fmt.Sprintf("CVE-2018-%04d", c+1+len(classes))
		if !clusters.SameCluster(a, b) {
			t.Errorf("same-class pair %s/%s split", a, b)
		}
	}
}

func TestModelCosine(t *testing.T) {
	corpus := table1Corpus()
	model, err := BuildModel(corpus, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The Table 1 XSS trio must be pairwise similar; an XSS entry and the
	// SMB RCE must not be.
	if sim := model.Cosine("CVE-2014-0157", "CVE-2016-4428"); sim < 0.5 {
		t.Errorf("XSS twins cosine = %.2f, want >= 0.5", sim)
	}
	if sim := model.Cosine("CVE-2014-0157", "CVE-2017-0144"); sim > 0.4 {
		t.Errorf("XSS vs SMB cosine = %.2f, want < 0.4", sim)
	}
	// Self-similarity is 1 (unit vectors).
	if sim := model.Cosine("CVE-2014-0157", "CVE-2014-0157"); sim < 0.999 {
		t.Errorf("self cosine = %.2f", sim)
	}
	// Unknown CVEs yield 0.
	if sim := model.Cosine("CVE-2014-0157", "CVE-9999-1"); sim != 0 {
		t.Errorf("unknown cosine = %.2f", sim)
	}
}

func TestModelExtendMakesCosineQueryable(t *testing.T) {
	corpus := table1Corpus()
	model, err := BuildModel(corpus, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fresh := vuln("CVE-2019-0001",
		"Cross-site scripting (XSS) vulnerability in OpenStack Dashboard (Horizon) "+
			"allows remote attackers to inject arbitrary web script via a dashboard form.",
		"oracle:solaris:11.3")
	c := model.Extend(fresh)
	if c < 0 || c >= model.Clusters.K {
		t.Fatalf("Extend assigned out-of-range cluster %d", c)
	}
	if sim := model.Cosine("CVE-2019-0001", "CVE-2016-4428"); sim < 0.5 {
		t.Errorf("extended XSS cosine to trio = %.2f, want >= 0.5", sim)
	}
	// Extending twice keeps the original assignment.
	if again := model.Extend(fresh); again != c {
		t.Errorf("re-Extend moved cluster %d -> %d", c, again)
	}
}
