package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansResult reports one K-means run.
type KMeansResult struct {
	// K is the number of clusters.
	K int
	// Assignment maps each input vector index to its cluster id in
	// [0, K).
	Assignment []int
	// Centroids are the final cluster centres.
	Centroids [][]float64
	// WCSS is the within-cluster sum of squared distances (the quantity
	// the elbow method inspects).
	WCSS float64
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// maxKMeansIterations bounds a Lloyd run; K-means on TF-IDF vectors
// converges in far fewer rounds in practice.
const maxKMeansIterations = 100

// KMeans clusters the vectors into k groups using Lloyd's algorithm with
// k-means++ seeding. The rng drives seeding only; a given (vectors, k,
// seed) triple is fully deterministic.
func KMeans(vectors [][]float64, k int, rng *rand.Rand) (*KMeansResult, error) {
	n := len(vectors)
	switch {
	case n == 0:
		return nil, fmt.Errorf("cluster: no vectors to cluster")
	case k <= 0:
		return nil, fmt.Errorf("cluster: k = %d must be positive", k)
	case k > n:
		return nil, fmt.Errorf("cluster: k = %d exceeds %d vectors", k, n)
	case rng == nil:
		return nil, fmt.Errorf("cluster: nil rng")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("cluster: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}

	centroids := seedPlusPlus(vectors, k, rng)
	assignment := make([]int, n)
	counts := make([]int, k)
	result := &KMeansResult{K: k}
	for iter := 1; iter <= maxKMeansIterations; iter++ {
		result.Iterations = iter
		changed := false
		for i, v := range vectors {
			best, bestDist := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(v, centroids[c]); d < bestDist {
					best, bestDist = c, d
				}
			}
			if assignment[i] != best || iter == 1 {
				changed = changed || assignment[i] != best
				assignment[i] = best
			}
		}
		if iter > 1 && !changed {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
			counts[c] = 0
		}
		for i, v := range vectors {
			c := assignment[i]
			counts[c]++
			for d := range v {
				centroids[c][d] += v[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the point farthest from
				// its centroid, the standard fix for k-means++ drift.
				far, farDist := 0, -1.0
				for i, v := range vectors {
					if d := sqDist(v, centroids[assignment[i]]); d > farDist {
						far, farDist = i, d
					}
				}
				copy(centroids[c], vectors[far])
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] /= float64(counts[c])
			}
		}
	}
	result.Assignment = assignment
	result.Centroids = centroids
	for i, v := range vectors {
		result.WCSS += sqDist(v, centroids[assignment[i]])
	}
	return result, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ scheme:
// the first uniformly, each next with probability proportional to the
// squared distance from the nearest chosen centroid.
func seedPlusPlus(vectors [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(vectors)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, cloneVec(vectors[first]))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, v := range vectors {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		var next int
		if total == 0 {
			next = rng.Intn(n) // all points coincide with centroids
		} else {
			target := rng.Float64() * total
			for i, d := range dists {
				target -= d
				if target <= 0 {
					next = i
					break
				}
			}
		}
		centroids = append(centroids, cloneVec(vectors[next]))
	}
	return centroids
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// ElbowK chooses the number of clusters by the elbow method (paper §5.1,
// citing Thorndike): K-means is run for each k in [1, maxK], and the knee
// of the WCSS curve is located as the k whose point has maximum distance
// from the chord connecting the curve's endpoints.
func ElbowK(vectors [][]float64, maxK int, rng *rand.Rand) (int, []float64, error) {
	if maxK <= 0 {
		return 0, nil, fmt.Errorf("cluster: maxK = %d must be positive", maxK)
	}
	if maxK > len(vectors) {
		maxK = len(vectors)
	}
	wcss := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		res, err := KMeans(vectors, k, rng)
		if err != nil {
			return 0, nil, err
		}
		wcss[k-1] = res.WCSS
	}
	if maxK <= 2 {
		return maxK, wcss, nil
	}
	// Normalize both axes to [0,1]: nx runs over k, ny over WCSS with
	// ny=1 at k=1 and ny=0 at k=maxK. The chord then connects (0,1) to
	// (1,0), and the knee is the point with maximum perpendicular
	// distance |nx + ny - 1| / sqrt(2) from it.
	xspan := float64(maxK - 1)
	yspan := wcss[0] - wcss[maxK-1]
	if yspan == 0 {
		yspan = 1 // flat curve: every k is equally good, pick k=1 below
	}
	bestK, bestDist := 1, -1.0
	for i := 0; i < maxK; i++ {
		nx := float64(i) / xspan
		ny := (wcss[i] - wcss[maxK-1]) / yspan
		d := math.Abs(nx+ny-1) / math.Sqrt2
		if d > bestDist {
			bestDist, bestK = d, i+1
		}
	}
	return bestK, wcss, nil
}
