package lint

import (
	"go/ast"
	"go/types"
)

// ruleGlobalRand flags uses of the global math/rand source. The chaos
// harness, the synthetic feed generator and `lazbench` all promise that
// a `-seed` reproduces a run bit-for-bit; one call to the process-global
// source (seeded from runtime entropy since Go 1.20) breaks that promise
// for every component downstream. Constructors are exempt: the required
// pattern is an injected `*rand.Rand` built via rand.New(rand.NewSource)
// and owned by a single goroutine.
type ruleGlobalRand struct{}

func (ruleGlobalRand) Name() string { return "globalrand" }
func (ruleGlobalRand) Doc() string {
	return "no global math/rand source; inject a seeded *rand.Rand"
}

// globalRandExempt lists math/rand package functions that do not draw
// from the global source.
var globalRandExempt = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func (r ruleGlobalRand) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil {
				return true
			}
			path := f.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on an injected *rand.Rand are the fix
			}
			if globalRandExempt[f.Name()] {
				return true
			}
			out = append(out, finding(p.Fset, sel.Pos(), r.Name(),
				"rand.%s draws from the process-global source and breaks seeded reproducibility; inject a *rand.Rand", f.Name()))
			return true
		})
	}
	return out
}
