package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

// The rule tests type-check small synthetic packages against the same
// stdlib source importer the loader uses, so every rule is exercised on
// a known violation and a known-clean variant. The package path is part
// of each fixture because two rules scope on it (wallclock on
// internal/bft, locked-blocking's transport-Send check on
// internal/transport).

var (
	testFset     = token.NewFileSet()
	testImporter types.Importer
	importerOnce sync.Once
	testFileSeq  int
)

func testPkg(t *testing.T, path, src string) *Package {
	t.Helper()
	importerOnce.Do(func() {
		testImporter = importer.ForCompiler(testFset, "source", nil)
	})
	testFileSeq++
	name := fmt.Sprintf("%s/t%d.go", path, testFileSeq)
	f, err := parser.ParseFile(testFset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: testImporter}
	tpkg, err := conf.Check(path, testFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{Path: path, Dir: path, Fset: testFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func runRule(t *testing.T, r Rule, path, src string) []Finding {
	t.Helper()
	return RunRules([]*Package{testPkg(t, path, src)}, []Rule{r})
}

func wantFindings(t *testing.T, got []Finding, rule string, lines ...int) {
	t.Helper()
	if len(got) != len(lines) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(lines), renderFindings(got))
	}
	for i, f := range got {
		if f.Rule != rule {
			t.Errorf("finding %d: rule = %q, want %q", i, f.Rule, rule)
		}
		if f.Line != lines[i] {
			t.Errorf("finding %d: line = %d, want %d (%s)", i, f.Line, lines[i], f)
		}
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if b.Len() == 0 {
		b.WriteString("  (none)\n")
	}
	return b.String()
}

func TestMapRangeDigest(t *testing.T) {
	got := runRule(t, ruleMapRangeDigest{}, "lazarus/internal/bft", `package bft

import "crypto/sha256"

type Digest [32]byte

func tally(counts map[Digest]int, q int) Digest {
	var winner Digest
	for d, n := range counts {
		if n >= q {
			winner = d
			break
		}
	}
	return winner
}

func hashEach(m map[string][]byte) [][32]byte {
	var out [][32]byte
	for _, v := range m {
		out = append(out, sha256.Sum256(v))
	}
	return out
}
`)
	wantFindings(t, got, "maprange-digest", 11, 21)
}

func TestMapRangeDigestSortedIdiomClean(t *testing.T) {
	got := runRule(t, ruleMapRangeDigest{}, "lazarus/internal/bft", `package bft

import (
	"crypto/sha256"
	"sort"
)

func stable(m map[string][]byte) [32]byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write(m[k])
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}
`)
	wantFindings(t, got, "maprange-digest")
}

func TestGlobalRand(t *testing.T) {
	got := runRule(t, ruleGlobalRand{}, "lazarus/internal/transport", `package transport

import "math/rand"

func jitter(d int64) int64 {
	return d + rand.Int63n(d/2+1)
}

func seeded(seed, d int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return d + r.Int63n(d/2+1)
}
`)
	wantFindings(t, got, "globalrand", 6)
}

func TestGlobalRandAllowDirective(t *testing.T) {
	got := runRule(t, ruleGlobalRand{}, "lazarus/internal/transport", `package transport

import "math/rand"

func jitter(d int64) int64 {
	//lazlint:allow globalrand(demo fixture, seed irrelevant)
	return d + rand.Int63n(d/2+1)
}
`)
	wantFindings(t, got, "globalrand")
}

func TestWallClock(t *testing.T) {
	const src = `package bft

import "time"

func decide() int64 {
	return time.Now().UnixNano()
}

func timeout() time.Time {
	return time.Now().Add(time.Second) //lazlint:allow wallclock(timeout scheduling, not protocol state)
}
`
	got := runRule(t, ruleWallClock{}, "lazarus/internal/bft", src)
	wantFindings(t, got, "wallclock", 6)

	// The rule is scoped to the consensus package: elsewhere the same
	// source is clean.
	got = runRule(t, ruleWallClock{}, "lazarus/internal/controlplane", src)
	wantFindings(t, got, "wallclock")
}

func TestLockedBlocking(t *testing.T) {
	got := runRule(t, ruleLockedBlocking{}, "lazarus/internal/x", `package x

import (
	"net"
	"sync"
)

type S struct {
	mu   sync.Mutex
	ch   chan int
	conn net.Conn
}

func (s *S) badSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1
}

func (s *S) badWrite(b []byte) {
	s.mu.Lock()
	s.conn.Write(b)
	s.mu.Unlock()
}

func (s *S) goodUnlockFirst() {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

func (s *S) goodNonBlocking() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *S) goodGuardBranch(bad bool) {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.ch <- 2
}
`)
	wantFindings(t, got, "locked-blocking", 17, 22)
}

func TestLockedBlockingSelect(t *testing.T) {
	got := runRule(t, ruleLockedBlocking{}, "lazarus/internal/x", `package x

import "sync"

type P struct {
	mu sync.Mutex
	ch chan int
}

func (p *P) badBlockingSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 1:
	case v := <-p.ch:
		_ = v
	}
}
`)
	wantFindings(t, got, "locked-blocking", 13)
}

func TestNakedGoroutine(t *testing.T) {
	got := runRule(t, ruleNakedGoroutine{}, "lazarus/internal/x", `package x

import "sync"

type W struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func (w *W) start() {
	w.wg.Add(1)
	go w.loop()
	go func() {
		for {
			work()
		}
	}()
}

func (w *W) loop() {
	defer w.wg.Done()
	<-w.stop
}

func fetch() int {
	res := make(chan int, 1)
	go func() { res <- 42 }()
	return <-res
}

func drain(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

func work() {}
`)
	// Only the for-loop literal is naked: go w.loop() resolves to a body
	// with a WaitGroup tie, fetch's literal signals a parent-owned
	// channel, drain's literal ranges over a channel.
	wantFindings(t, got, "naked-goroutine", 13)
}

// TestNakedGoroutineFsyncWorker pins the FileWAL fsync-worker shape
// (controlplane/wal.go): a method spawned with `go w.syncLoop()` whose
// body defers wg.Done and ranges over a kick channel that Close closes.
// Both ties must keep recognizing it — if a rule edit starts flagging
// this idiom, the WAL needs an allow directive or the rule is wrong.
func TestNakedGoroutineFsyncWorker(t *testing.T) {
	got := runRule(t, ruleNakedGoroutine{}, "lazarus/internal/x", `package x

import "sync"

type FW struct {
	mu   sync.Mutex
	kick chan struct{}
	wg   sync.WaitGroup
}

func open() *FW {
	w := &FW{kick: make(chan struct{}, 1)}
	w.wg.Add(1)
	go w.syncLoop()
	return w
}

func (w *FW) syncLoop() {
	defer w.wg.Done()
	for range w.kick {
		w.fsync()
	}
}

func (w *FW) fsync() {
	w.mu.Lock()
	defer w.mu.Unlock()
}

func (w *FW) close() {
	close(w.kick)
	w.wg.Wait()
}
`)
	wantFindings(t, got, "naked-goroutine")
}

func TestUncheckedVerify(t *testing.T) {
	got := runRule(t, ruleUncheckedVerify{}, "lazarus/internal/x", `package x

import "crypto/ed25519"

type Req struct{}

func (Req) Verify(pub []byte) bool { return true }

func handle(pub ed25519.PublicKey, msg, sig []byte, r Req) bool {
	ed25519.Verify(pub, msg, sig)
	_ = ed25519.Verify(pub, msg, sig)
	r.Verify(nil)
	if !ed25519.Verify(pub, msg, sig) {
		return false
	}
	ok := ed25519.Verify(pub, msg, sig)
	return ok
}
`)
	wantFindings(t, got, "unchecked-verify", 10, 11, 12)
}

func TestBadDirectives(t *testing.T) {
	got := RunRules([]*Package{testPkg(t, "lazarus/internal/x", `package x

//lazlint:allow wallclock()
//lazlint:allow nosuchrule(some reason)
//lazlint:allow oops

func f() {}
`)}, nil)
	wantFindings(t, got, "bad-directive", 3, 4, 5)
}

// ---- interprocedural rules (PR 10) ----

func TestAuthBeforeUse(t *testing.T) {
	got := runRule(t, ruleAuthBeforeUse{}, "fix1/internal/bft", `package bft

type NodeID int

type Message struct {
	From NodeID
	View uint64
	Sig  []byte
}

func (m *Message) VerifySig(pub []byte) bool { return len(m.Sig) > 0 }

type Replica struct {
	seen map[NodeID]uint64
	view uint64
}

// Mutation precedes the check.
func (r *Replica) onEarly(msg *Message) {
	r.seen[msg.From] = msg.View
	if !msg.VerifySig(nil) {
		return
	}
}

// No check anywhere on the path.
func (r *Replica) onNever(msg *Message) {
	r.seen[msg.From] = msg.View
}

// Clean: verification dominates the mutation.
func (r *Replica) onGuarded(msg *Message) {
	if !msg.VerifySig(nil) {
		return
	}
	r.seen[msg.From] = msg.View
}

// The check and the mutation live in helpers: only the interprocedural
// summaries can relate them.
func (r *Replica) note(msg *Message)         { r.seen[msg.From] = msg.View }
func (r *Replica) authed(msg *Message) bool  { return msg.VerifySig(nil) }

func (r *Replica) onHelperBad(msg *Message) {
	r.note(msg)
}

// Clean interprocedural variant.
func (r *Replica) onHelperGood(msg *Message) {
	if !r.authed(msg) {
		return
	}
	r.note(msg)
}
`)
	wantFindings(t, got, "auth-before-use", 20, 28, 45)
}

func TestAuthBeforeUseSuppressed(t *testing.T) {
	got := runRule(t, ruleAuthBeforeUse{}, "fix2/internal/bft", `package bft

type NodeID int

type Message struct {
	From NodeID
	View uint64
}

type Replica struct{ seen map[NodeID]uint64 }

func (r *Replica) onUnsigned(msg *Message) {
	r.seen[msg.From] = msg.View //lazlint:allow auth-before-use(votes are envelope-authenticated in this fixture)
}
`)
	wantFindings(t, got, "auth-before-use")
}

func TestEpochGuard(t *testing.T) {
	got := runRule(t, ruleEpochGuard{}, "fix3/internal/bft", `package bft

type NodeID int

type Message struct {
	From NodeID
	View uint64
}

type Replica struct {
	seen map[NodeID]uint64
	view uint64
}

// No epoch/view comparison anywhere.
func (r *Replica) onStale(msg *Message) {
	r.seen[msg.From] = msg.View
}

// Mutation precedes the comparison.
func (r *Replica) onLate(msg *Message) {
	r.seen[msg.From] = msg.View
	if msg.View != r.view {
		return
	}
}

// Clean: inline comparison first.
func (r *Replica) onFresh(msg *Message) {
	if msg.View != r.view {
		return
	}
	r.seen[msg.From] = msg.View
}

// Clean: the comparison lives in a helper with a message argument.
func (r *Replica) fresh(msg *Message) bool { return msg.View == r.view }

func (r *Replica) onFreshHelper(msg *Message) {
	if !r.fresh(msg) {
		return
	}
	r.seen[msg.From] = msg.View
}

// Clean: reads only, nothing to guard.
func (r *Replica) onRead(msg *Message) uint64 {
	return r.seen[msg.From]
}
`)
	wantFindings(t, got, "epoch-guard", 17, 22)
}

func TestEpochGuardSuppressed(t *testing.T) {
	got := runRule(t, ruleEpochGuard{}, "fix4/internal/bft", `package bft

type NodeID int

type Message struct {
	From  NodeID
	SeqNo uint64
}

type Replica struct{ ahead map[NodeID]uint64 }

func (r *Replica) onCkpt(msg *Message) {
	r.ahead[msg.From] = msg.SeqNo //lazlint:allow epoch-guard(checkpoints tally cross-epoch by design in this fixture)
}
`)
	wantFindings(t, got, "epoch-guard")
}

func TestDigestBlindTally(t *testing.T) {
	got := runRule(t, ruleDigestBlindTally{}, "fix5/internal/bft", `package bft

type NodeID int
type Digest [32]byte

type Membership struct{ n int }

func (m *Membership) Quorum() int { return 2*m.n/3 + 1 }
func (m *Membership) F() int      { return m.n / 3 }

type Message struct {
	From NodeID
	D    Digest
}

type Replica struct {
	votes map[NodeID]bool
	mem   *Membership
	d     Digest
}

// A digest is in play (stored) but the quorum counts bare senders.
func (r *Replica) blind(msg *Message) bool {
	r.d = msg.D
	r.votes[msg.From] = true
	return len(r.votes) >= r.mem.Quorum()
}

// Clean: every insert is dominated by a digest-equality filter.
func (r *Replica) filtered(msg *Message) bool {
	if msg.D != r.d {
		return false
	}
	r.votes[msg.From] = true
	return len(r.votes) >= r.mem.Quorum()
}

// Clean: no digest in scope — a liveness count of distinct members.
func (r *Replica) liveness(from NodeID) bool {
	r.votes[from] = true
	return len(r.votes) > r.mem.F()
}
`)
	wantFindings(t, got, "digest-blind-tally", 26)
}

func TestDigestBlindTallySuppressed(t *testing.T) {
	got := runRule(t, ruleDigestBlindTally{}, "fix6/internal/bft", `package bft

type NodeID int
type Digest [32]byte

type Membership struct{ n int }

func (m *Membership) F() int { return m.n / 3 }

type Replica struct {
	ahead map[NodeID]uint64
	mem   *Membership
	d     Digest
}

func (r *Replica) claims(from NodeID, d Digest) bool {
	r.d = d
	r.ahead[from] = 1
	return len(r.ahead) > r.mem.F() //lazlint:allow digest-blind-tally(distinct claimants suffice in this fixture)
}
`)
	wantFindings(t, got, "digest-blind-tally")
}

func TestUnboundedRemoteMap(t *testing.T) {
	got := runRule(t, ruleRemoteMap{}, "fix7/internal/bft", `package bft

type NodeID int
type Digest [32]byte

type Membership struct{ ids map[NodeID]bool }

func (m *Membership) Contains(id NodeID) bool { return m.ids[id] }

type Message struct {
	From  NodeID
	SeqNo uint64
	D     Digest
}

type Replica struct {
	mem    *Membership
	byFrom map[NodeID]uint64
	log    map[uint64]bool
	seen   map[Digest]bool
	queue  []uint64
	low    uint64
}

// NodeID key with no membership guard.
func (r *Replica) onA(msg *Message) {
	r.byFrom[msg.From] = msg.SeqNo
}

// Clean: membership guard dominates.
func (r *Replica) onB(msg *Message) {
	if !r.mem.Contains(msg.From) {
		return
	}
	r.byFrom[msg.From] = msg.SeqNo
}

// Integer key with no window.
func (r *Replica) onC(msg *Message) {
	r.log[msg.SeqNo] = true
}

// Clean: two-sided window on the key.
func (r *Replica) onD(msg *Message) {
	if msg.SeqNo <= r.low || msg.SeqNo > r.low+64 {
		return
	}
	r.log[msg.SeqNo] = true
}

// The insert lives in a helper; the guard lives at the call site.
func (r *Replica) inWindow(seq uint64) bool { return seq > r.low && seq <= r.low+64 }
func (r *Replica) put(seq uint64)           { r.log[seq] = true }

func (r *Replica) onE(msg *Message) {
	if !r.inWindow(msg.SeqNo) {
		return
	}
	r.put(msg.SeqNo)
}

// One unguarded remote caller is enough to condemn the helper's insert.
func (r *Replica) onF(msg *Message) {
	r.put(msg.SeqNo)
}

// Digest key and slice append, both uncapped.
func (r *Replica) onG(msg *Message) {
	r.seen[msg.D] = true
	r.queue = append(r.queue, msg.SeqNo)
}

// Clean: a cap guard dominates both growth sites.
func (r *Replica) onH(msg *Message) {
	if len(r.seen) >= 1024 {
		return
	}
	r.seen[msg.D] = true
	r.queue = append(r.queue, msg.SeqNo)
}
`)
	wantFindings(t, got, "unbounded-remote-map", 27, 40, 53, 69, 70)
}

func TestUnboundedRemoteMapSuppressed(t *testing.T) {
	got := runRule(t, ruleRemoteMap{}, "fix8/internal/bft", `package bft

type NodeID int

type Message struct {
	From  NodeID
	SeqNo uint64
}

type Replica struct{ byFrom map[NodeID]uint64 }

func (r *Replica) onA(msg *Message) {
	r.byFrom[msg.From] = msg.SeqNo //lazlint:allow unbounded-remote-map(bounded elsewhere in this fixture)
}
`)
	wantFindings(t, got, "unbounded-remote-map")
}

func TestLockOrder(t *testing.T) {
	got := runRule(t, ruleLockOrder{}, "fix9/locks", `package locks

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

type S struct {
	a *A
	b *B
}

func (s *S) lockAB() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
}

// Opposite order through a call: B held, then a helper takes A.
func (s *S) lockBA() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	s.lockA()
}

func (s *S) lockA() {
	s.a.mu.Lock()
	s.a.mu.Unlock()
}
`)
	wantFindings(t, got, "lock-order", 16)
}

func TestLockOrderClean(t *testing.T) {
	got := runRule(t, ruleLockOrder{}, "fix10/locks", `package locks

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

type S struct {
	a *A
	b *B
}

// Consistent order everywhere: A before B.
func (s *S) lockAB() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
}

func (s *S) lockABviaCall() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.lockB()
}

func (s *S) lockB() {
	s.b.mu.Lock()
	s.b.mu.Unlock()
}
`)
	wantFindings(t, got, "lock-order")
}

func TestLockOrderSuppressed(t *testing.T) {
	got := runRule(t, ruleLockOrder{}, "fix11/locks", `package locks

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

type S struct {
	a *A
	b *B
}

func (s *S) lockAB() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock() //lazlint:allow lock-order(fixture: the cycle is intentional)
	defer s.b.mu.Unlock()
}

func (s *S) lockBA() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	s.a.mu.Lock()
}
`)
	wantFindings(t, got, "lock-order")
}

func TestStaleDirective(t *testing.T) {
	src := `package bft

import "time"

func now() time.Time {
	return time.Now() //lazlint:allow wallclock(live: suppresses the finding on this line)
}

func pure(x int) int {
	return x + 1 //lazlint:allow wallclock(stale: nothing to suppress here)
}
`
	// With the audit enabled, the dead directive is reported.
	got := RunRules([]*Package{testPkg(t, "fix12/internal/bft", src)},
		[]Rule{ruleWallClock{}, ruleStaleDirective{}})
	wantFindings(t, got, "stale-directive", 10)

	// A narrowed run that never exercises wallclock must stay quiet:
	// it cannot tell a live suppression from a dead one.
	got = RunRules([]*Package{testPkg(t, "fix13/internal/bft", src)},
		[]Rule{ruleStaleDirective{}})
	wantFindings(t, got, "stale-directive")
}
