package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

// The rule tests type-check small synthetic packages against the same
// stdlib source importer the loader uses, so every rule is exercised on
// a known violation and a known-clean variant. The package path is part
// of each fixture because two rules scope on it (wallclock on
// internal/bft, locked-blocking's transport-Send check on
// internal/transport).

var (
	testFset     = token.NewFileSet()
	testImporter types.Importer
	importerOnce sync.Once
	testFileSeq  int
)

func testPkg(t *testing.T, path, src string) *Package {
	t.Helper()
	importerOnce.Do(func() {
		testImporter = importer.ForCompiler(testFset, "source", nil)
	})
	testFileSeq++
	name := fmt.Sprintf("%s/t%d.go", path, testFileSeq)
	f, err := parser.ParseFile(testFset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: testImporter}
	tpkg, err := conf.Check(path, testFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{Path: path, Dir: path, Fset: testFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func runRule(t *testing.T, r Rule, path, src string) []Finding {
	t.Helper()
	return RunRules([]*Package{testPkg(t, path, src)}, []Rule{r})
}

func wantFindings(t *testing.T, got []Finding, rule string, lines ...int) {
	t.Helper()
	if len(got) != len(lines) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(lines), renderFindings(got))
	}
	for i, f := range got {
		if f.Rule != rule {
			t.Errorf("finding %d: rule = %q, want %q", i, f.Rule, rule)
		}
		if f.Line != lines[i] {
			t.Errorf("finding %d: line = %d, want %d (%s)", i, f.Line, lines[i], f)
		}
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if b.Len() == 0 {
		b.WriteString("  (none)\n")
	}
	return b.String()
}

func TestMapRangeDigest(t *testing.T) {
	got := runRule(t, ruleMapRangeDigest{}, "lazarus/internal/bft", `package bft

import "crypto/sha256"

type Digest [32]byte

func tally(counts map[Digest]int, q int) Digest {
	var winner Digest
	for d, n := range counts {
		if n >= q {
			winner = d
			break
		}
	}
	return winner
}

func hashEach(m map[string][]byte) [][32]byte {
	var out [][32]byte
	for _, v := range m {
		out = append(out, sha256.Sum256(v))
	}
	return out
}
`)
	wantFindings(t, got, "maprange-digest", 11, 21)
}

func TestMapRangeDigestSortedIdiomClean(t *testing.T) {
	got := runRule(t, ruleMapRangeDigest{}, "lazarus/internal/bft", `package bft

import (
	"crypto/sha256"
	"sort"
)

func stable(m map[string][]byte) [32]byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write(m[k])
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}
`)
	wantFindings(t, got, "maprange-digest")
}

func TestGlobalRand(t *testing.T) {
	got := runRule(t, ruleGlobalRand{}, "lazarus/internal/transport", `package transport

import "math/rand"

func jitter(d int64) int64 {
	return d + rand.Int63n(d/2+1)
}

func seeded(seed, d int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return d + r.Int63n(d/2+1)
}
`)
	wantFindings(t, got, "globalrand", 6)
}

func TestGlobalRandAllowDirective(t *testing.T) {
	got := runRule(t, ruleGlobalRand{}, "lazarus/internal/transport", `package transport

import "math/rand"

func jitter(d int64) int64 {
	//lazlint:allow globalrand(demo fixture, seed irrelevant)
	return d + rand.Int63n(d/2+1)
}
`)
	wantFindings(t, got, "globalrand")
}

func TestWallClock(t *testing.T) {
	const src = `package bft

import "time"

func decide() int64 {
	return time.Now().UnixNano()
}

func timeout() time.Time {
	return time.Now().Add(time.Second) //lazlint:allow wallclock(timeout scheduling, not protocol state)
}
`
	got := runRule(t, ruleWallClock{}, "lazarus/internal/bft", src)
	wantFindings(t, got, "wallclock", 6)

	// The rule is scoped to the consensus package: elsewhere the same
	// source is clean.
	got = runRule(t, ruleWallClock{}, "lazarus/internal/controlplane", src)
	wantFindings(t, got, "wallclock")
}

func TestLockedBlocking(t *testing.T) {
	got := runRule(t, ruleLockedBlocking{}, "lazarus/internal/x", `package x

import (
	"net"
	"sync"
)

type S struct {
	mu   sync.Mutex
	ch   chan int
	conn net.Conn
}

func (s *S) badSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1
}

func (s *S) badWrite(b []byte) {
	s.mu.Lock()
	s.conn.Write(b)
	s.mu.Unlock()
}

func (s *S) goodUnlockFirst() {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

func (s *S) goodNonBlocking() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *S) goodGuardBranch(bad bool) {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.ch <- 2
}
`)
	wantFindings(t, got, "locked-blocking", 17, 22)
}

func TestLockedBlockingSelect(t *testing.T) {
	got := runRule(t, ruleLockedBlocking{}, "lazarus/internal/x", `package x

import "sync"

type P struct {
	mu sync.Mutex
	ch chan int
}

func (p *P) badBlockingSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 1:
	case v := <-p.ch:
		_ = v
	}
}
`)
	wantFindings(t, got, "locked-blocking", 13)
}

func TestNakedGoroutine(t *testing.T) {
	got := runRule(t, ruleNakedGoroutine{}, "lazarus/internal/x", `package x

import "sync"

type W struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func (w *W) start() {
	w.wg.Add(1)
	go w.loop()
	go func() {
		for {
			work()
		}
	}()
}

func (w *W) loop() {
	defer w.wg.Done()
	<-w.stop
}

func fetch() int {
	res := make(chan int, 1)
	go func() { res <- 42 }()
	return <-res
}

func drain(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

func work() {}
`)
	// Only the for-loop literal is naked: go w.loop() resolves to a body
	// with a WaitGroup tie, fetch's literal signals a parent-owned
	// channel, drain's literal ranges over a channel.
	wantFindings(t, got, "naked-goroutine", 13)
}

// TestNakedGoroutineFsyncWorker pins the FileWAL fsync-worker shape
// (controlplane/wal.go): a method spawned with `go w.syncLoop()` whose
// body defers wg.Done and ranges over a kick channel that Close closes.
// Both ties must keep recognizing it — if a rule edit starts flagging
// this idiom, the WAL needs an allow directive or the rule is wrong.
func TestNakedGoroutineFsyncWorker(t *testing.T) {
	got := runRule(t, ruleNakedGoroutine{}, "lazarus/internal/x", `package x

import "sync"

type FW struct {
	mu   sync.Mutex
	kick chan struct{}
	wg   sync.WaitGroup
}

func open() *FW {
	w := &FW{kick: make(chan struct{}, 1)}
	w.wg.Add(1)
	go w.syncLoop()
	return w
}

func (w *FW) syncLoop() {
	defer w.wg.Done()
	for range w.kick {
		w.fsync()
	}
}

func (w *FW) fsync() {
	w.mu.Lock()
	defer w.mu.Unlock()
}

func (w *FW) close() {
	close(w.kick)
	w.wg.Wait()
}
`)
	wantFindings(t, got, "naked-goroutine")
}

func TestUncheckedVerify(t *testing.T) {
	got := runRule(t, ruleUncheckedVerify{}, "lazarus/internal/x", `package x

import "crypto/ed25519"

type Req struct{}

func (Req) Verify(pub []byte) bool { return true }

func handle(pub ed25519.PublicKey, msg, sig []byte, r Req) bool {
	ed25519.Verify(pub, msg, sig)
	_ = ed25519.Verify(pub, msg, sig)
	r.Verify(nil)
	if !ed25519.Verify(pub, msg, sig) {
		return false
	}
	ok := ed25519.Verify(pub, msg, sig)
	return ok
}
`)
	wantFindings(t, got, "unchecked-verify", 10, 11, 12)
}

func TestBadDirectives(t *testing.T) {
	got := RunRules([]*Package{testPkg(t, "lazarus/internal/x", `package x

//lazlint:allow wallclock()
//lazlint:allow nosuchrule(some reason)
//lazlint:allow oops

func f() {}
`)}, nil)
	wantFindings(t, got, "bad-directive", 3, 4, 5)
}
