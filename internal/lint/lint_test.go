package lint

import (
	"os"
	"testing"
)

// TestRepoClean is the golden gate: the whole module must lint clean.
// Any new violation of a suite rule — or a suppression without a
// justified reason — fails `go test ./internal/lint` exactly as it
// fails `go run ./cmd/lazlint ./...` in CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is slow")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := findModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	findings := Run(pkgs)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
