package lint

// auth-before-use mechanizes the PR 7 incident: the replica served
// cached replies and created protocol-log state for messages whose
// signatures had not been checked yet, so a non-member could burn
// replica memory and read the reply cache. The invariant: in an inbox
// handler (an on<X> method taking *Message), no receiver-state mutation
// and no network send may precede the first signature verification on
// the handler's path. "Verification" is any call that transitively
// reaches ed25519.Verify / (*Message).VerifySig — the interprocedural
// summary lets the check live in verify.go while the mutation lives in
// order.go. Handlers for deliberately unsigned traffic (commit votes
// ride the authenticated transport envelope) carry an allow directive
// that documents exactly that design decision.

import (
	"go/ast"
	"go/token"
	"sort"
)

type ruleAuthBeforeUse struct{}

func (ruleAuthBeforeUse) Name() string { return "auth-before-use" }
func (ruleAuthBeforeUse) Doc() string {
	return "message handlers must verify authenticity before mutating replica state or sending"
}
func (ruleAuthBeforeUse) Check(p *Package) []Finding { return nil }

func (ruleAuthBeforeUse) CheckProgram(prog *Program) []Finding {
	var out []Finding
	for _, fi := range prog.SortedFuncs() {
		if !pathHasSuffix(fi.Pkg.Path, "internal/bft") {
			continue
		}
		if _, ok := fi.isHandler(); !ok {
			continue
		}
		events := handlerEvents(prog, fi)
		firstVerify := token.NoPos
		for _, ev := range events {
			if ev.verify {
				firstVerify = ev.pos
				break
			}
		}
		if firstVerify == token.NoPos {
			for _, ev := range events {
				if ev.protected {
					out = append(out, finding(fi.Pkg.Fset, ev.pos, "auth-before-use",
						"handler %s %s but never verifies the message's signature; authenticate before acting",
						fi.Obj.Name(), ev.what))
					break // one finding per unverified handler
				}
			}
			continue
		}
		for _, ev := range events {
			if ev.pos >= firstVerify {
				break
			}
			if ev.protected {
				out = append(out, finding(fi.Pkg.Fset, ev.pos, "auth-before-use",
					"handler %s %s before its first signature verification; move the check above this access",
					fi.Obj.Name(), ev.what))
			}
		}
	}
	return out
}

// handlerEvent is one position-ordered occurrence inside a handler body
// that the handler rules care about.
type handlerEvent struct {
	pos       token.Pos
	verify    bool   // a call that transitively verifies a signature
	protected bool   // mutates receiver state or sends on the network
	epochCmp  bool   // compares message epoch/view against local state
	what      string // description for findings
}

// handlerEvents walks a handler body once and returns its events in
// source order. Source order approximates dominance: Lazarus handlers
// are straight-line guard chains (`if !ok { return }`), so a check that
// appears textually earlier genuinely dominates later statements.
func handlerEvents(prog *Program, fi *FuncInfo) []handlerEvent {
	var events []handlerEvent
	ti := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(ti, n)
			if callee == nil {
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 &&
					rootedIn(ti, n.Args[0], fi.RecvDerived) {
					events = append(events, handlerEvent{pos: n.Pos(), protected: true, what: "mutates replica state"})
				}
				return true
			}
			switch callee.Name() {
			case "Verify", "VerifySig":
				events = append(events, handlerEvent{pos: n.Pos(), verify: true})
				return true
			}
			info := prog.FuncOf(callee)
			if info != nil && info.Verifies {
				events = append(events, handlerEvent{pos: n.Pos(), verify: true})
				return true
			}
			recvRooted := false
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				recvRooted = usesAny(ti, sel.X, fi.RecvDerived)
			}
			if info != nil && recvRooted {
				switch {
				case info.MutatesRecv:
					events = append(events, handlerEvent{pos: n.Pos(), protected: true,
						what: "mutates replica state (via " + callee.Name() + ")"})
				case info.SendsNet:
					events = append(events, handlerEvent{pos: n.Pos(), protected: true,
						what: "sends on the network (via " + callee.Name() + ")"})
				}
			}
			if info != nil && info.ComparesMsgState {
				for _, arg := range n.Args {
					if usesAny(ti, arg, fi.MsgDerived) {
						events = append(events, handlerEvent{pos: n.Pos(), epochCmp: true})
						break
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, bare := lhs.(*ast.Ident); bare {
					continue
				}
				if rootedIn(ti, lhs, fi.RecvDerived) {
					events = append(events, handlerEvent{pos: lhs.Pos(), protected: true, what: "mutates replica state"})
					break
				}
			}
		case *ast.IncDecStmt:
			if _, bare := n.X.(*ast.Ident); !bare && rootedIn(ti, n.X, fi.RecvDerived) {
				events = append(events, handlerEvent{pos: n.Pos(), protected: true, what: "mutates replica state"})
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				if comparesMsgField(ti, n, fi.MsgDerived) {
					events = append(events, handlerEvent{pos: n.Pos(), epochCmp: true})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}
