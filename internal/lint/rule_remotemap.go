package lint

// unbounded-remote-map mechanizes the PR 8/PR 9 memory-exhaustion class:
// any map or slice on the Replica that grows under a remote-controlled
// key is a pre-authentication (or even post-authentication, for a
// Byzantine member) resource-exhaustion lever unless some path bound
// dominates the insert. The invariant, by key type:
//
//   - NodeID keys need a membership check (Contains / Keys lookup)
//     before the insert: the map is then bounded by |membership|.
//   - integer keys (sequence numbers, view numbers) need a two-sided
//     window comparison on the key, a call to a window helper
//     (inWindow-shaped summary), or an explicit len() cap.
//   - digest and other unbounded key spaces need a len() cap.
//
// The analysis is one-level interprocedural: an insert keyed by a
// parameter (r.inst's seq, recordViewChange's vc) is judged at each call
// site that passes a message-derived argument, where the caller's guards
// count. Call sites passing locally built values are cold and need no
// guard.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type ruleRemoteMap struct{}

func (ruleRemoteMap) Name() string { return "unbounded-remote-map" }
func (ruleRemoteMap) Doc() string {
	return "replica maps/slices must not grow unboundedly under remote-controlled keys"
}
func (ruleRemoteMap) Check(p *Package) []Finding { return nil }

// guard kinds required per key type.
const (
	guardMembership = "membership"
	guardWindow     = "window/cap"
	guardCap        = "cap"
)

func (ruleRemoteMap) CheckProgram(prog *Program) []Finding {
	facts := map[*FuncInfo]*rmFacts{}
	factsOf := func(fi *FuncInfo) *rmFacts {
		f := facts[fi]
		if f == nil {
			f = gatherRMFacts(prog, fi)
			facts[fi] = f
		}
		return f
	}

	var out []Finding
	for _, fi := range prog.SortedFuncs() {
		if !pathHasSuffix(fi.Pkg.Path, "internal/bft") {
			continue
		}
		f := factsOf(fi)
		for _, ins := range f.inserts {
			if factsOf(fi).guardedBefore(ins.guard, ins.keyStr, ins.pos) {
				continue
			}
			if ins.hot {
				out = append(out, finding(fi.Pkg.Fset, ins.pos, "unbounded-remote-map",
					"%s grows under remote-controlled key with no %s guard on this path; bound it",
					ins.container, ins.guard))
				continue
			}
			if ins.paramIdx < 0 {
				continue // key not remote-controllable
			}
			// Judge each call site that feeds the parameter something
			// message-derived; the caller's guards before the call count.
			for _, cs := range fi.Callers {
				caller := cs.Caller
				if !pathHasSuffix(caller.Pkg.Path, "internal/bft") || ins.paramIdx >= len(cs.Call.Args) {
					continue
				}
				arg := cs.Call.Args[ins.paramIdx]
				if !usesAny(caller.Pkg.Info, arg, caller.MsgDerived) {
					continue // locally built value: cold call site
				}
				if factsOf(caller).guardedBefore(ins.guard, types.ExprString(arg), cs.Call.Pos()) {
					continue
				}
				out = append(out, finding(fi.Pkg.Fset, ins.pos, "unbounded-remote-map",
					"%s grows under remote-controlled key via unguarded call from %s; add a %s guard there or a cap here",
					ins.container, caller.Obj.Name(), ins.guard))
				break // one finding per insert site
			}
		}
	}
	return out
}

// rmInsert is one growth site of a receiver-rooted container.
type rmInsert struct {
	container string // printed container expression
	keyStr    string // printed key expression (window matching)
	guard     string // required guard kind
	pos       token.Pos
	hot       bool // key is message-derived in this very function's handler
	paramIdx  int  // parameter the key derives from, -1 if none
}

// rmCmp is one ordered comparison (window-guard half).
type rmCmp struct {
	exprStr string
	lower   bool
	pos     token.Pos
}

// rmFacts is the per-function guard/insert inventory.
type rmFacts struct {
	fi          *FuncInfo
	inserts     []rmInsert
	membership  []token.Pos // Contains/Keys/ChecksMembership-callee events
	caps        []token.Pos // len(<recv-rooted>) ordered comparisons
	cmps        []rmCmp     // ordered comparisons for window matching
	windowCalls []struct {
		pos  token.Pos
		args []string
	}
}

// guardedBefore reports whether a guard of the required kind dominates
// (source order) the given position; keyStr scopes window comparisons to
// the key ("msg.SeqNo" matches comparisons on msg.SeqNo or deeper).
func (f *rmFacts) guardedBefore(kind, keyStr string, pos token.Pos) bool {
	capBefore := func() bool {
		for _, p := range f.caps {
			if p < pos {
				return true
			}
		}
		return false
	}
	switch kind {
	case guardMembership:
		for _, p := range f.membership {
			if p < pos {
				return true
			}
		}
		return false
	case guardCap:
		return capBefore()
	case guardWindow:
		if capBefore() {
			return true
		}
		match := func(s string) bool {
			return s == keyStr || len(s) > len(keyStr) && s[:len(keyStr)] == keyStr && s[len(keyStr)] == '.'
		}
		var lower, upper bool
		for _, c := range f.cmps {
			if c.pos < pos && match(c.exprStr) {
				if c.lower {
					lower = true
				} else {
					upper = true
				}
			}
		}
		if lower && upper {
			return true
		}
		for _, wc := range f.windowCalls {
			if wc.pos >= pos {
				continue
			}
			for _, a := range wc.args {
				if match(a) {
					return true
				}
			}
		}
		return false
	}
	return false
}

func gatherRMFacts(prog *Program, fi *FuncInfo) *rmFacts {
	f := &rmFacts{fi: fi}
	ti := fi.Pkg.Info
	_, isHandler := fi.isHandler()

	msgParamIdx, plainParams := -1, map[types.Object]int{}
	for i, o := range fi.Params {
		if isNamedType(o.Type(), "Message") {
			if msgParamIdx < 0 {
				msgParamIdx = i
			}
		} else {
			plainParams[o] = i
		}
	}

	classify := func(key ast.Expr) (hot bool, paramIdx int, ok bool) {
		if usesAny(ti, key, fi.MsgDerived) {
			return isHandler, msgParamIdx, true
		}
		for o, idx := range plainParams {
			if usesAny(ti, key, map[types.Object]bool{o: true}) {
				return false, idx, true
			}
		}
		return false, -1, false
	}

	addInsert := func(container, keyStr, guard string, pos token.Pos, key ast.Expr) {
		hot, idx, remote := classify(key)
		if !remote {
			return
		}
		f.inserts = append(f.inserts, rmInsert{
			container: container, keyStr: keyStr, guard: guard, pos: pos, hot: hot, paramIdx: idx,
		})
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(ti, n)
			if callee == nil {
				return true
			}
			if callee.Name() == "Contains" {
				f.membership = append(f.membership, n.Pos())
			}
			if ci := prog.FuncOf(callee); ci != nil {
				if ci.ChecksMembership {
					f.membership = append(f.membership, n.Pos())
				}
				if ci.TwoSidedParam {
					args := make([]string, 0, len(n.Args))
					for _, a := range n.Args {
						args = append(args, types.ExprString(a))
					}
					f.windowCalls = append(f.windowCalls, struct {
						pos  token.Pos
						args []string
					}{n.Pos(), args})
				}
			}
		case *ast.IndexExpr:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "Keys" {
				f.membership = append(f.membership, n.Pos())
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				for i, side := range []ast.Expr{n.X, n.Y} {
					if isLenOfRecvRooted(ti, side, fi.RecvDerived) {
						f.caps = append(f.caps, n.Pos())
					}
					// X < Y: X has an upper bound; Y a lower bound
					// (inverted for the Y side below).
					lower := i == 1
					if n.Op == token.GTR || n.Op == token.GEQ {
						lower = !lower
					}
					f.cmps = append(f.cmps, rmCmp{exprStr: types.ExprString(ast.Unparen(side)), lower: lower, pos: n.Pos()})
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && rootedIn(ti, ix.X, fi.RecvDerived) {
					container := types.ExprString(ix.X)
					guard := guardForKey(ti.TypeOf(ix.Index))
					addInsert(container, types.ExprString(ast.Unparen(ix.Index)), guard, lhs.Pos(), ix.Index)
					continue
				}
				// Slice growth: x = append(x, elems...) with a
				// receiver-rooted destination and a remote element.
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil || !rootedIn(ti, lhs, fi.RecvDerived) {
					continue
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 1 {
						for _, el := range call.Args[1:] {
							addInsert(types.ExprString(lhs), types.ExprString(el), guardCap, lhs.Pos(), el)
						}
					}
				}
			}
		}
		return true
	})
	return f
}

// guardForKey picks the required guard kind from the key's type.
func guardForKey(t types.Type) string {
	switch {
	case isNamedType(t, "NodeID"):
		return guardMembership
	case isDigestType(t):
		return guardCap
	}
	if t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return guardWindow
		}
	}
	return guardCap
}

// isLenOfRecvRooted reports whether e is len(<receiver-rooted expr>).
func isLenOfRecvRooted(ti *types.Info, e ast.Expr, recvDerived map[types.Object]bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return false
	}
	return rootedIn(ti, call.Args[0], recvDerived)
}
