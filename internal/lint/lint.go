// Package lint is lazlint's engine: a dependency-free static-analysis
// suite over go/ast and go/types that enforces the project invariants
// the Go compiler cannot see. Lazarus's correctness rests on replicas
// being deterministic state machines (paper §5's replica-coordination
// assumption): nondeterministic map iteration or wall-clock reads that
// feed a Digest silently fork checkpoint state, a global math/rand call
// breaks seeded-harness reproducibility, and a blocking call under a
// mutex is how both swap-engine races of PR 2/PR 3 started. Each rule
// here encodes one such invariant so every PR is gated on it by
// `go run ./cmd/lazlint ./...` and the in-process golden test.
//
// Findings are suppressed, one line at a time, with a directive carrying
// a mandatory reason:
//
//	//lazlint:allow wallclock(commit-latency metric, not protocol state)
//
// placed on the offending line or the line directly above it. A
// malformed directive (unknown rule, missing reason) is itself reported.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at one source position.
type Finding struct {
	// Rule is the reporting rule's name (e.g. "maprange-digest").
	Rule string `json:"rule"`
	// Pos locates the violation.
	Pos token.Position `json:"-"`
	// File, Line and Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message explains the violation and the expected remedy.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Rule is one invariant checker. Rules are pure: they read the
// type-checked package and report findings, never mutating shared state.
type Rule interface {
	// Name is the rule's identifier, used in output and allow directives.
	Name() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
	// Check analyzes one package.
	Check(p *Package) []Finding
}

// Rules returns the full lazlint suite in reporting order.
func Rules() []Rule {
	return []Rule{
		ruleMapRangeDigest{},
		ruleGlobalRand{},
		ruleWallClock{},
		ruleLockedBlocking{},
		ruleNakedGoroutine{},
		ruleUncheckedVerify{},
	}
}

// RuleNames returns the names of every rule in the suite.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return names
}

// Run checks every package with every rule, applies allow directives and
// returns the surviving findings sorted by position.
func Run(pkgs []*Package) []Finding {
	return RunRules(pkgs, Rules())
}

// RunRules is Run with an explicit rule set (tests exercise rules in
// isolation through it).
func RunRules(pkgs []*Package, rules []Rule) []Finding {
	var out []Finding
	for _, p := range pkgs {
		allows, bad := collectAllows(p)
		out = append(out, bad...)
		for _, r := range rules {
			for _, f := range r.Check(p) {
				f.normalize()
				if allows.suppresses(r.Name(), f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// normalize fills the JSON mirror fields from Pos.
func (f *Finding) normalize() {
	f.File = f.Pos.Filename
	f.Line = f.Pos.Line
	f.Col = f.Pos.Column
}

// finding is the rules' construction helper.
func finding(fset *token.FileSet, pos token.Pos, rule, format string, args ...any) Finding {
	f := Finding{Rule: rule, Pos: fset.Position(pos), Message: fmt.Sprintf(format, args...)}
	f.normalize()
	return f
}
