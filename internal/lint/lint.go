// Package lint is lazlint's engine: a dependency-free static-analysis
// suite over go/ast and go/types that enforces the project invariants
// the Go compiler cannot see. Lazarus's correctness rests on replicas
// being deterministic state machines (paper §5's replica-coordination
// assumption): nondeterministic map iteration or wall-clock reads that
// feed a Digest silently fork checkpoint state, a global math/rand call
// breaks seeded-harness reproducibility, and a blocking call under a
// mutex is how both swap-engine races of PR 2/PR 3 started. Each rule
// here encodes one such invariant so every PR is gated on it by
// `go run ./cmd/lazlint ./...` and the in-process golden test.
//
// Findings are suppressed, one line at a time, with a directive carrying
// a mandatory reason:
//
//	//lazlint:allow wallclock(commit-latency metric, not protocol state)
//
// placed on the offending line or the line directly above it. A
// malformed directive (unknown rule, missing reason) is itself reported.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	// Rule is the reporting rule's name (e.g. "maprange-digest").
	Rule string `json:"rule"`
	// Pos locates the violation.
	Pos token.Position `json:"-"`
	// File, Line and Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message explains the violation and the expected remedy.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Rule is one invariant checker. Rules are pure: they read the
// type-checked package and report findings, never mutating shared state.
type Rule interface {
	// Name is the rule's identifier, used in output and allow directives.
	Name() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
	// Check analyzes one package.
	Check(p *Package) []Finding
}

// ProgramRule is an interprocedural rule: instead of one package at a
// time it sees the whole loaded program (call graph plus per-function
// summaries, see program.go). RunRules builds the Program lazily, once,
// when any selected rule implements this interface.
type ProgramRule interface {
	Rule
	// CheckProgram analyzes the whole program.
	CheckProgram(prog *Program) []Finding
}

// Rules returns the full lazlint suite in reporting order.
func Rules() []Rule {
	return []Rule{
		ruleMapRangeDigest{},
		ruleGlobalRand{},
		ruleWallClock{},
		ruleLockedBlocking{},
		ruleNakedGoroutine{},
		ruleUncheckedVerify{},
		ruleAuthBeforeUse{},
		ruleDigestBlindTally{},
		ruleEpochGuard{},
		ruleRemoteMap{},
		ruleLockOrder{},
		ruleStaleDirective{},
	}
}

// RuleNames returns the names of every rule in the suite.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return names
}

// SelectRules resolves a comma-separated rule-name list (the CLI's
// -rules flag) against the suite. An empty spec selects every rule.
func SelectRules(spec string) ([]Rule, error) {
	all := Rules()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := map[string]Rule{}
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []Rule
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
		}
		seen[name] = true
		out = append(out, r)
	}
	return out, nil
}

// ruleStaleDirective is the suppression audit. It has no Check of its
// own: RunRules tracks which //lazlint:allow directives actually
// suppressed a finding and, when this rule is selected, reports the ones
// that suppressed nothing (restricted to directives naming rules that
// ran, so narrowed -rules invocations stay quiet).
type ruleStaleDirective struct{}

func (ruleStaleDirective) Name() string { return "stale-directive" }
func (ruleStaleDirective) Doc() string {
	return "//lazlint:allow directives must still suppress a live finding"
}
func (ruleStaleDirective) Check(p *Package) []Finding { return nil }

// Run checks every package with every rule, applies allow directives and
// returns the surviving findings sorted by position.
func Run(pkgs []*Package) []Finding {
	return RunRules(pkgs, Rules())
}

// RunRules is Run with an explicit rule set (tests exercise rules in
// isolation through it).
func RunRules(pkgs []*Package, rules []Rule) []Finding {
	var out []Finding
	allows := newAllowIndex()
	for _, p := range pkgs {
		out = append(out, collectAllows(allows, p)...)
	}
	var prog *Program
	auditStale := false
	ran := map[string]bool{}
	for _, r := range rules {
		if _, ok := r.(ruleStaleDirective); ok {
			auditStale = true
			continue
		}
		ran[r.Name()] = true
		var fs []Finding
		if pr, ok := r.(ProgramRule); ok {
			if prog == nil {
				prog = BuildProgram(pkgs)
			}
			fs = pr.CheckProgram(prog)
		} else {
			for _, p := range pkgs {
				fs = append(fs, r.Check(p)...)
			}
		}
		for _, f := range fs {
			f.normalize()
			if allows.suppresses(r.Name(), f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	if auditStale {
		for _, f := range allows.stale(ran) {
			if allows.suppresses("stale-directive", f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// normalize fills the JSON mirror fields from Pos.
func (f *Finding) normalize() {
	f.File = f.Pos.Filename
	f.Line = f.Pos.Line
	f.Col = f.Pos.Column
}

// finding is the rules' construction helper.
func finding(fset *token.FileSet, pos token.Pos, rule, format string, args ...any) Finding {
	f := Finding{Rule: rule, Pos: fset.Position(pos), Message: fmt.Sprintf(format, args...)}
	f.normalize()
	return f
}
