package lint

import (
	"go/ast"
	"go/types"
)

// ruleNakedGoroutine flags `go` statements with no visible lifecycle
// tie. Long-lived components here (transports, replicas, the control
// plane) shut down by closing channels and waiting on WaitGroups; a
// goroutine outside that discipline outlives Close, races teardown, and
// is exactly how the memory transport's Add-after-Wait race (PR 1) and
// the swap engine's late-verdict leak (PR 3) happened.
//
// A spawn counts as tied when the spawned code visibly participates in
// a lifecycle:
//
//   - it calls Done/Add on a sync.WaitGroup;
//   - it receives from (or selects on) a context's Done channel or any
//     `chan struct{}` stop/closed channel;
//   - it sends to or ranges over a channel declared in the spawning
//     function (completion signal / worker feed the parent owns);
//   - it is a method or function declared in this package whose body
//     satisfies one of the above (e.g. `go ep.acceptLoop()`).
//
// Everything else is reported. Fire-and-forget work that is genuinely
// bounded belongs behind a `//lazlint:allow naked-goroutine(reason)`.
type ruleNakedGoroutine struct{}

func (ruleNakedGoroutine) Name() string { return "naked-goroutine" }
func (ruleNakedGoroutine) Doc() string {
	return "every goroutine needs a WaitGroup or stop-channel lifecycle tie"
}

func (r ruleNakedGoroutine) Check(p *Package) []Finding {
	// Index this package's function declarations by their object so
	// `go r.pump()` can be resolved to pump's body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	var out []Finding
	for _, file := range p.Files {
		// Track the enclosing function for each GoStmt to know which
		// channels are "parent-owned".
		var walk func(n ast.Node, encl ast.Node)
		walk = func(n ast.Node, encl ast.Node) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walkStmts(n.Body, n, walk)
				}
				return
			case *ast.FuncLit:
				if n.Body != nil {
					walkStmts(n.Body, n, walk)
				}
				return
			case *ast.GoStmt:
				if !r.tied(p, n, encl, decls) {
					out = append(out, finding(p.Fset, n.Pos(), r.Name(),
						"goroutine has no lifecycle tie (no WaitGroup, stop channel or parent-owned channel); it will outlive Close and race teardown"))
				}
			}
			walkChildren(n, encl, walk)
		}
		for _, d := range file.Decls {
			walk(d, nil)
		}
	}
	return out
}

// walkStmts / walkChildren implement a traversal that remembers the
// nearest enclosing function node.
func walkStmts(body *ast.BlockStmt, encl ast.Node, walk func(ast.Node, ast.Node)) {
	for _, st := range body.List {
		walk(st, encl)
	}
}

func walkChildren(n ast.Node, encl ast.Node, walk func(ast.Node, ast.Node)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		switch c.(type) {
		case *ast.FuncDecl, *ast.FuncLit, *ast.GoStmt:
			walk(c, encl)
			return false
		}
		return true
	})
}

// tied decides whether the spawned goroutine has a lifecycle tie.
func (r ruleNakedGoroutine) tied(p *Package, g *ast.GoStmt, encl ast.Node, decls map[types.Object]*ast.FuncDecl) bool {
	var body ast.Node
	switch fn := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fn.Body
	default:
		if f := calleeFunc(p.Info, g.Call); f != nil {
			if fd, ok := decls[f]; ok {
				body = fd.Body
				encl = nil // parent-owned channels are meaningless across decls
			}
		}
	}
	if body == nil {
		// A spawn we cannot see into (cross-package function value):
		// treat as naked so it gets an explicit allow with a reason.
		return false
	}
	return r.bodyTied(p, body, encl)
}

func (r ruleNakedGoroutine) bodyTied(p *Package, body ast.Node, encl ast.Node) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done() / wg.Add(-1) on a sync.WaitGroup.
			if methodOn(p.Info, n, "Done", func(pkg string) bool { return pkg == "sync" }) ||
				methodOn(p.Info, n, "Wait", func(pkg string) bool { return pkg == "sync" }) {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if typeName(p.Info.TypeOf(sel.X)) == "sync.WaitGroup" {
						tied = true
					}
				}
			}
		case *ast.UnaryExpr:
			// <-ch: stop channels and context Done channels.
			if n.Op.String() == "<-" && r.stopChannel(p, n.X, encl) {
				tied = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					tied = true // drains a channel someone closes
				}
			}
		case *ast.SendStmt:
			// Sending on a parent-owned channel is a completion signal.
			if encl != nil && r.declaredWithin(p, n.Chan, encl) {
				tied = true
			}
		}
		return true
	})
	return tied
}

// stopChannel reports whether the received-from expression looks like a
// lifecycle channel: ctx.Done(), any `chan struct{}`, or a parent-owned
// channel.
func (r ruleNakedGoroutine) stopChannel(p *Package, x ast.Expr, encl ast.Node) bool {
	if call, ok := ast.Unparen(x).(*ast.CallExpr); ok {
		if methodOn(p.Info, call, "Done", func(pkg string) bool { return pkg == "context" }) {
			return true
		}
	}
	t := p.Info.TypeOf(x)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return true // chan struct{} is a stop/closed channel by convention
	}
	if tt, ok := ch.Elem().(*types.Named); ok && tt.Obj().Name() == "Time" {
		return false // timer channels are not lifecycle ties
	}
	return encl != nil && r.declaredWithin(p, x, encl)
}

// declaredWithin reports whether the expression's root object is
// declared inside the enclosing function node.
func (r ruleNakedGoroutine) declaredWithin(p *Package, x ast.Expr, encl ast.Node) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() >= encl.Pos() && obj.Pos() < encl.End()
}
