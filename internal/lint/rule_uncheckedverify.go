package lint

import (
	"go/ast"
	"go/types"
)

// ruleUncheckedVerify flags signature verifications whose boolean result
// is discarded. An unchecked ed25519.Verify (or a project Verify /
// VerifySig method) authenticates nothing: the message is processed as
// if the check passed, which in a BFT protocol converts "tolerates f
// forgeries" into "accepts any forgery". Both swap-engine audits found
// the call sites easy to get subtly wrong, so the result must feed a
// branch or be explicitly consumed — never dropped on the floor.
type ruleUncheckedVerify struct{}

func (ruleUncheckedVerify) Name() string { return "unchecked-verify" }
func (ruleUncheckedVerify) Doc() string {
	return "the result of ed25519.Verify (and Verify/VerifySig methods) must be used"
}

// verifyCall reports whether the call is a signature verification
// returning a single bool.
func verifyCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return "", false
	}
	if basic, ok := sig.Results().At(0).Type().(*types.Basic); !ok || basic.Kind() != types.Bool {
		return "", false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "crypto/ed25519" && f.Name() == "Verify" && sig.Recv() == nil {
		return "ed25519.Verify", true
	}
	if sig.Recv() != nil && (f.Name() == "Verify" || f.Name() == "VerifySig") {
		return f.Name(), true
	}
	return "", false
}

func (r ruleUncheckedVerify) Check(p *Package) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr, name string) {
		out = append(out, finding(p.Fset, call.Pos(), r.Name(),
			"result of %s discarded: the signature check has no effect; branch on it or reject the message", name))
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := verifyCall(p.Info, call); ok {
						report(call, name)
					}
				}
			case *ast.GoStmt:
				if name, ok := verifyCall(p.Info, n.Call); ok {
					report(n.Call, name)
				}
			case *ast.DeferStmt:
				if name, ok := verifyCall(p.Info, n.Call); ok {
					report(n.Call, name)
				}
			case *ast.AssignStmt:
				// `_ = req.Verify(pub)` and friends: every target blank.
				allBlank := true
				for _, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if !allBlank {
					return true
				}
				for _, rhs := range n.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok {
						if name, ok := verifyCall(p.Info, call); ok {
							report(call, name)
						}
					}
				}
			}
			return true
		})
	}
	return out
}
