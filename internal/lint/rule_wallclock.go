package lint

import (
	"go/ast"
	"go/types"
)

// ruleWallClock flags wall-clock reads inside the consensus package.
// Replicas must be deterministic state machines: a time.Now() whose
// value influences protocol state (what gets proposed, hashed or voted
// on) makes replicas diverge even when they execute the same command
// stream. Timeout scheduling and latency metrics are legitimate — those
// sites carry a `//lazlint:allow wallclock(reason)` directive — but the
// default in `internal/bft` is that clock reads are suspect.
type ruleWallClock struct{}

func (ruleWallClock) Name() string { return "wallclock" }
func (ruleWallClock) Doc() string {
	return "no time.Now/time.Since in consensus decision paths (internal/bft)"
}

func (r ruleWallClock) Check(p *Package) []Finding {
	if !pathHasSuffix(p.Path, "internal/bft") {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" {
				return true
			}
			switch f.Name() {
			case "Now", "Since", "Until":
			default:
				return true
			}
			out = append(out, finding(p.Fset, sel.Pos(), r.Name(),
				"time.%s in consensus code: replicas fork if this feeds protocol state; if it is a timeout or metric, add //lazlint:allow wallclock(reason)", f.Name()))
			return true
		})
	}
	return out
}
