package lint

// digest-blind-tally mechanizes the PR 6 bug: prepare/commit quorums
// were counted as "distinct senders seen" without requiring that the
// senders voted for the SAME batch digest, so f equivocating votes for
// digest A plus honest votes for digest B reached 2f+1 and certified a
// batch no quorum agreed on. The invariant: a comparison of
// len(sender-keyed map) against a quorum-shaped expression
// (…Quorum()/…F() arithmetic), in a function where a Digest value is in
// play, is only safe when every insertion into that map is dominated by
// a digest-equality filter. Counts that are digest-free by design
// (f+1 distinct checkpoint claimants prove the group moved on,
// regardless of which digest each claims) carry an allow directive.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

type ruleDigestBlindTally struct{}

func (ruleDigestBlindTally) Name() string { return "digest-blind-tally" }
func (ruleDigestBlindTally) Doc() string {
	return "quorum tallies keyed by sender must filter or key votes by the voted digest"
}
func (ruleDigestBlindTally) Check(p *Package) []Finding { return nil }

func (ruleDigestBlindTally) CheckProgram(prog *Program) []Finding {
	var out []Finding
	for _, fi := range prog.SortedFuncs() {
		out = append(out, checkDigestBlind(fi)...)
	}
	return out
}

func checkDigestBlind(fi *FuncInfo) []Finding {
	ti := fi.Pkg.Info

	// The rule only applies where a digest is actually in play: a tally
	// that never sees a Digest (view-change liveness counts, reply
	// votes) has nothing to key by.
	mentionsDigest := false
	type insert struct {
		mapExpr string
		pos     token.Pos
	}
	type tally struct {
		mapExpr string
		pos     token.Pos
	}
	var inserts []insert
	var tallies []tally
	var digestCmps []token.Pos

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if e, ok := n.(ast.Expr); ok && isDigestType(ti.TypeOf(e)) {
				mentionsDigest = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || !senderKeyedMap(ti.TypeOf(ix.X)) {
					continue
				}
				inserts = append(inserts, insert{mapExpr: types.ExprString(ix.X), pos: lhs.Pos()})
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ:
				if isDigestType(ti.TypeOf(n.X)) || isDigestType(ti.TypeOf(n.Y)) {
					digestCmps = append(digestCmps, n.Pos())
				}
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				for i, side := range []ast.Expr{n.X, n.Y} {
					m := lenOfSenderMap(ti, side)
					if m == "" {
						continue
					}
					other := n.Y
					if i == 1 {
						other = n.X
					}
					if quorumShaped(ti, other) {
						tallies = append(tallies, tally{mapExpr: m, pos: n.Pos()})
					}
				}
			}
		}
		return true
	})

	if !mentionsDigest || len(tallies) == 0 {
		return nil
	}
	sort.Slice(digestCmps, func(i, j int) bool { return digestCmps[i] < digestCmps[j] })

	var out []Finding
	for _, t := range tallies {
		guarded := false
		sawInsert := false
		for _, in := range inserts {
			if in.mapExpr != t.mapExpr {
				continue
			}
			sawInsert = true
			// Dominated (source-order) by a digest-equality filter?
			ok := false
			for _, cp := range digestCmps {
				if cp < in.pos {
					ok = true
					break
				}
			}
			if !ok {
				guarded = false
				break
			}
			guarded = true
		}
		if sawInsert && guarded {
			continue
		}
		out = append(out, finding(fi.Pkg.Fset, t.pos, "digest-blind-tally",
			"quorum compare counts distinct senders in %s without tallying the voted digest; key or filter the votes by digest",
			t.mapExpr))
	}
	return out
}

// senderKeyedMap reports whether t is a map keyed by a node-identity
// type (named NodeID, here or in any fixture).
func senderKeyedMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	return ok && isNamedType(m.Key(), "NodeID")
}

// lenOfSenderMap returns the printed map expression when e is
// len(<sender-keyed map>), else "".
func lenOfSenderMap(ti *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return ""
	}
	if !senderKeyedMap(ti.TypeOf(call.Args[0])) {
		return ""
	}
	return types.ExprString(call.Args[0])
}

// quorumShaped reports whether the expression derives from a quorum
// threshold: it contains a call to something named Quorum or F.
func quorumShaped(ti *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if f := calleeFunc(ti, call); f != nil && (f.Name() == "Quorum" || f.Name() == "F") {
				found = true
			}
		}
		return true
	})
	return found
}
