package lint

// epoch-guard mechanizes the PR 8/PR 9 incident class: a handler that
// acts on a message without first relating the message's epoch/view to
// the replica's own lets stale-configuration traffic (a retired replica,
// a pre-reconfiguration view-change) mutate current-epoch state. The
// invariant: an inbox handler in internal/bft that mutates Replica state
// must, before its first mutation, compare the message's Epoch, View or
// NewView field against local state — either inline or by calling a
// helper whose summary says it performs such a comparison on a
// message-derived argument. Handlers that are cross-epoch BY DESIGN
// (checkpoint tallies drive straggler state transfer; state replies ARE
// the recovery path; client requests carry no epoch) each carry an allow
// directive recording that justification.

import (
	"go/token"
	"strings"
)

type ruleEpochGuard struct{}

func (ruleEpochGuard) Name() string { return "epoch-guard" }
func (ruleEpochGuard) Doc() string {
	return "bft message handlers must compare message epoch/view with local state before mutating"
}
func (ruleEpochGuard) Check(p *Package) []Finding { return nil }

func (ruleEpochGuard) CheckProgram(prog *Program) []Finding {
	var out []Finding
	for _, fi := range prog.SortedFuncs() {
		if !pathHasSuffix(fi.Pkg.Path, "internal/bft") {
			continue
		}
		if _, ok := fi.isHandler(); !ok {
			continue
		}
		events := handlerEvents(prog, fi)
		firstCmp := token.NoPos
		for _, ev := range events {
			if ev.epochCmp {
				firstCmp = ev.pos
				break
			}
		}
		for _, ev := range events {
			if !ev.protected || !strings.HasPrefix(ev.what, "mutates") {
				continue
			}
			if firstCmp == token.NoPos {
				out = append(out, finding(fi.Pkg.Fset, ev.pos, "epoch-guard",
					"handler %s mutates replica state but never compares the message's epoch/view against local state",
					fi.Obj.Name()))
			} else if ev.pos < firstCmp {
				out = append(out, finding(fi.Pkg.Fset, ev.pos, "epoch-guard",
					"handler %s mutates replica state before its first epoch/view comparison; guard the mutation",
					fi.Obj.Name()))
			}
			break // one finding per handler: the first unguarded mutation
		}
	}
	return out
}
