package lint

// lock-order builds the whole-repo lock-acquisition graph and reports
// cycles. Nodes are lock *classes* — a struct field path like
// "lazarus/internal/bft.Replica.statMu" or a package-level mutex — so
// two instances of the same struct map to one node. Edges are added
// when a lock is taken while another is held, either directly in one
// body or through a call: if f holds A and calls g, f may acquire
// everything g (transitively) acquires while holding A. Any cycle in
// that graph is a potential deadlock given the right interleaving;
// self-edges are excluded because same-class/different-instance nesting
// (parent locks child) is a common sound pattern the class abstraction
// cannot split. This extends the locked-blocking rule's flow tracking
// (PR 4) across function and package boundaries.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

type ruleLockOrder struct{}

func (ruleLockOrder) Name() string { return "lock-order" }
func (ruleLockOrder) Doc() string {
	return "the whole-repo lock-acquisition graph must be cycle-free"
}
func (ruleLockOrder) Check(p *Package) []Finding { return nil }

func (ruleLockOrder) CheckProgram(prog *Program) []Finding {
	type edge struct {
		from, to string
		pos      token.Pos
		fset     *token.FileSet
	}
	var edges []edge
	type heldCall struct {
		held   []string
		callee *types.Func
		pos    token.Pos
		fset   *token.FileSet
	}
	var heldCalls []heldCall
	direct := map[*FuncInfo]map[string]bool{}

	funcs := prog.SortedFuncs()
	for _, fi := range funcs {
		events := lockEvents(fi)
		held := map[string]bool{}
		acquired := map[string]bool{}
		for _, ev := range events {
			switch ev.kind {
			case lockEvtLock:
				for _, h := range sortedKeys(held) {
					if h != ev.class {
						edges = append(edges, edge{from: h, to: ev.class, pos: ev.pos, fset: fi.Pkg.Fset})
					}
				}
				held[ev.class] = true
				acquired[ev.class] = true
			case lockEvtUnlock:
				if !ev.deferred {
					delete(held, ev.class) // deferred unlocks hold to return
				}
			case lockEvtCall:
				if len(held) > 0 {
					heldCalls = append(heldCalls, heldCall{held: sortedKeys(held), callee: ev.callee, pos: ev.pos, fset: fi.Pkg.Fset})
				}
			}
		}
		direct[fi] = acquired
	}

	// Transitive acquire sets over the call graph.
	trans := map[*FuncInfo]map[string]bool{}
	for fi, acq := range direct {
		t := map[string]bool{}
		for c := range acq {
			t[c] = true
		}
		trans[fi] = t
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			for _, cs := range fi.Calls {
				callee := prog.FuncOf(cs.Callee)
				if callee == nil {
					continue
				}
				for c := range trans[callee] {
					if !trans[fi][c] {
						trans[fi][c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, hc := range heldCalls {
		callee := prog.FuncOf(hc.callee)
		if callee == nil {
			continue
		}
		for _, to := range sortedKeys(trans[callee]) {
			for _, from := range hc.held {
				if from != to {
					edges = append(edges, edge{from: from, to: to, pos: hc.pos, fset: hc.fset})
				}
			}
		}
	}

	// Keep the first edge per (from, to) for deterministic reporting.
	graph := map[string]map[string]edge{}
	for _, e := range edges {
		if graph[e.from] == nil {
			graph[e.from] = map[string]edge{}
		}
		if old, ok := graph[e.from][e.to]; !ok || e.pos < old.pos {
			graph[e.from][e.to] = e
		}
	}

	adj := map[string][]string{}
	for from, tos := range graph {
		for to := range tos {
			adj[from] = append(adj[from], to)
		}
		sort.Strings(adj[from])
	}

	var out []Finding
	for _, scc := range lockSCCs(adj) {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var parts []string
		first := edge{}
		for _, from := range scc {
			for _, to := range adj[from] {
				if !inSCC[to] {
					continue
				}
				e := graph[from][to]
				if first.fset == nil || e.pos < first.pos {
					first = e
				}
				p := e.fset.Position(e.pos)
				parts = append(parts, fmt.Sprintf("%s -> %s (%s:%d)", from, to, p.Filename, p.Line))
			}
		}
		f := Finding{
			Rule: "lock-order",
			Pos:  first.fset.Position(first.pos),
			Message: fmt.Sprintf("potential deadlock: lock-acquisition cycle among {%s}: %s; acquire these locks in one global order",
				strings.Join(scc, ", "), strings.Join(parts, ", ")),
		}
		f.normalize()
		out = append(out, f)
	}
	return out
}

const (
	lockEvtLock = iota
	lockEvtUnlock
	lockEvtCall
)

type lockEvt struct {
	kind     int
	class    string
	callee   *types.Func
	pos      token.Pos
	deferred bool
}

// lockEvents extracts the position-ordered lock/unlock/call events from
// a function body. Function literals are skipped: a goroutine body does
// not run under the spawner's locks (the locked-blocking rule already
// polices what happens inside the critical section itself).
func lockEvents(fi *FuncInfo) []lockEvt {
	ti := fi.Pkg.Info
	var events []lockEvt
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.CallExpr:
			callee := calleeFunc(ti, n)
			if callee == nil {
				return true
			}
			if cls, isLock, ok := mutexOp(ti, n, callee); ok {
				if cls == "" {
					return true // local mutex: no cross-function ordering
				}
				kind := lockEvtUnlock
				if isLock {
					kind = lockEvtLock
				}
				events = append(events, lockEvt{kind: kind, class: cls, pos: n.Pos(), deferred: deferredCalls[n]})
				return true
			}
			events = append(events, lockEvt{kind: lockEvtCall, callee: callee, pos: n.Pos()})
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// mutexOp classifies a call as a sync.Mutex/RWMutex Lock/Unlock
// (including promoted methods of embedded mutexes), returning the lock
// class, whether it acquires, and whether it is a mutex op at all.
func mutexOp(ti *types.Info, call *ast.CallExpr, callee *types.Func) (class string, isLock, ok bool) {
	var acquire bool
	switch callee.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || typePkgPath(sig.Recv().Type()) != "sync" {
		return "", false, false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	return lockClass(ti, sel.X), acquire, true
}

// lockClass names the lock an expression denotes: the innermost named
// type plus the trailing field path ("pkg.Replica.statMu"), a
// package-level variable ("pkg.registryMu"), or "" for locals.
func lockClass(ti *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return lockClass(ti, e.X)
	case *ast.SelectorExpr:
		if base := typeName(ti.TypeOf(e.X)); base != "" {
			return base + "." + e.Sel.Name
		}
		if inner := lockClass(ti, e.X); inner != "" {
			return inner + "." + e.Sel.Name
		}
		return ""
	case *ast.Ident:
		obj := ti.Uses[e]
		if obj == nil {
			return ""
		}
		if v, okVar := obj.(*types.Var); okVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Embedded mutex promoted through a named struct value.
		if base := typeName(obj.Type()); base != "" && !isMutex(obj.Type()) {
			return base + ".(embedded)"
		}
		return ""
	}
	return ""
}

// lockSCCs returns the strongly connected components of size >= 2 in
// deterministic order (Tarjan over sorted adjacency). Only multi-node
// components matter: a self-edge never forms (same-class nesting is
// filtered at edge creation), so size-1 components are cycle-free.
func lockSCCs(adj map[string][]string) [][]string {
	nodes := map[string]bool{}
	for from, tos := range adj {
		nodes[from] = true
		for _, to := range tos {
			nodes[to] = true
		}
	}
	order := sortedKeys(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) >= 2 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
