package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ruleLockedBlocking flags potentially-blocking operations performed
// while a sync.Mutex/RWMutex is held: channel sends (outside a select
// with a default), net.Conn reads/writes, and transport Send calls.
// Both lock/lifecycle races the chaos harness caught in the staged swap
// engine (PR 2, PR 3) grew from exactly this shape — a send or network
// call under a lock that a second goroutine needed to make progress.
// Under a mutex, "slow" becomes "deadlocked" the moment the unblocking
// party wants the same lock.
//
// The analysis is a per-function scan that tracks Lock/RLock...Unlock
// pairs in source order, treating `defer mu.Unlock()` as held-to-end
// and branch-local unlocks (the `if bad { mu.Unlock(); return }` guard
// idiom) as not releasing the outer path. Goroutine literals start with
// a clean slate: they run after the spawning statement returns the lock.
type ruleLockedBlocking struct{}

func (ruleLockedBlocking) Name() string { return "locked-blocking" }
func (ruleLockedBlocking) Doc() string {
	return "no channel sends, net.Conn I/O or transport sends while a mutex is held"
}

func (r ruleLockedBlocking) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		funcBodies(file, func(node ast.Node, body *ast.BlockStmt) {
			s := &lockScan{p: p, rule: r.Name()}
			s.block(body, map[string]bool{})
			out = append(out, s.out...)
		})
	}
	return out
}

// lockScan walks one function body tracking held locks by the printed
// receiver expression ("mu", "c.swapMu", ...).
type lockScan struct {
	p    *Package
	rule string
	out  []Finding
}

// lockCall classifies a statement as Lock/RLock (+1), Unlock/RUnlock
// (-1) on a mutex, returning the receiver key.
func (s *lockScan) lockCall(stmt ast.Stmt) (key string, delta int) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", 0
	}
	return s.lockExpr(es.X)
}

func (s *lockScan) lockExpr(x ast.Expr) (string, int) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return "", 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	var delta int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = +1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0
	}
	if !isMutex(s.p.Info.TypeOf(sel.X)) {
		return "", 0
	}
	return types.ExprString(sel.X), delta
}

// block scans a statement list with the incoming held-lock set, returns
// the set held after the list runs to completion.
func (s *lockScan) block(b *ast.BlockStmt, held map[string]bool) map[string]bool {
	return s.stmts(b.List, held)
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

func (s *lockScan) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	held = copySet(held)
	for _, stmt := range list {
		if key, delta := s.lockCall(stmt); delta != 0 {
			if delta > 0 {
				held[key] = true
			} else {
				delete(held, key)
			}
			continue
		}
		switch st := stmt.(type) {
		case *ast.DeferStmt:
			if key, delta := s.lockExpr(st.Call); delta < 0 {
				// defer mu.Unlock(): held for the rest of the function,
				// which is exactly what the scan models by keeping it in
				// the set — no change needed; record nothing.
				_ = key
				continue
			}
			// Other defers run at return; their bodies execute with
			// whatever is held *then*, which we approximate as "nothing"
			// for FuncLit defers (they overwhelmingly run post-unlock).
			continue
		case *ast.BlockStmt:
			held = s.block(st, held)
		case *ast.IfStmt:
			if st.Init != nil {
				s.checkNode(st.Init, held)
			}
			s.checkNode(st.Cond, held)
			thenOut := s.block(st.Body, held)
			elseOut := copySet(held)
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					elseOut = s.stmts(e.List, held)
					if terminates(e.List) {
						elseOut = copySet(held)
					}
				case *ast.IfStmt:
					elseOut = s.stmts([]ast.Stmt{e}, held)
				}
			}
			if terminates(st.Body.List) {
				// Early-exit branch: its lock changes don't reach here.
				held = elseOut
			} else {
				// Keep a lock only if every surviving path still holds it
				// (under-report rather than false-positive).
				held = intersect(thenOut, elseOut)
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			s.checkNode(st, held)
			// Conservatively assume these neither acquire nor release
			// across their boundary (checkNode flags their bodies with the
			// incoming set; internal Lock/Unlock pairs stay internal).
		default:
			s.checkNode(st, held)
		}
	}
	return held
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// checkNode flags blocking operations in the subtree given the held
// set. It does not descend into FuncLits: a spawned or deferred closure
// does not run under the spawning statement's locks.
func (s *lockScan) checkNode(n ast.Node, held map[string]bool) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			// A select with a default never blocks; without one it does.
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				// Case bodies still run under the lock; keep descending
				// into them but skip the comm operations themselves.
				for _, c := range n.Body.List {
					cc := c.(*ast.CommClause)
					for _, st := range cc.Body {
						s.checkNode(st, held)
					}
				}
				return false
			}
			s.report(n.Pos(), held, "blocking select (no default case)")
			return false
		case *ast.SendStmt:
			s.report(n.Pos(), held, "channel send")
			return true
		case *ast.CallExpr:
			if name, ok := s.blockingCall(n); ok {
				s.report(n.Pos(), held, name)
			}
			return true
		}
		return true
	})
}

// blockingCall classifies calls that can block on the network or on a
// peer goroutine.
func (s *lockScan) blockingCall(call *ast.CallExpr) (string, bool) {
	f := calleeFunc(s.p.Info, call)
	if f == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	switch f.Name() {
	case "Write", "Read":
		if typeName(recv) == "net.Conn" || implementsNetConn(recv) {
			return "net.Conn " + f.Name(), true
		}
	case "Send":
		if pathHasSuffix(typePkgPath(recv), "internal/transport") {
			return "transport Send", true
		}
	}
	return "", false
}

// implementsNetConn reports whether the receiver is a named type from
// package net whose underlying is an interface (net.Conn and friends)
// or a concrete net connection type.
func implementsNetConn(t types.Type) bool {
	if typePkgPath(t) != "net" {
		return false
	}
	switch typeName(t) {
	case "net.Conn", "net.TCPConn", "net.UDPConn", "net.UnixConn":
		return true
	}
	return false
}

func (s *lockScan) report(pos token.Pos, held map[string]bool, what string) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.out = append(s.out, finding(s.p.Fset, pos, s.rule,
		"%s while holding %s: a peer needing the lock to drain this wedges both goroutines; move the operation outside the critical section", what, strings.Join(keys, ", ")))
}
