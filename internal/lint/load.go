package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the shared file set (positions resolve through it).
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the packages matching the patterns.
// Supported patterns, resolved against dir (or the working directory
// when dir is empty):
//
//	./...        every package under dir's module root
//	./x/y/...    every package under x/y
//	./x/y, x/y   the single package in that directory
//
// Test files are skipped: the rules target production code, and the
// harness packages' own randomized tests are free to use test-local
// randomness.
func Load(dir string, patterns []string) ([]*Package, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		base, recursive := dir, false
		switch {
		case pat == "./..." || pat == "...":
			base, recursive = dir, true
		case strings.HasSuffix(pat, "/..."):
			base, recursive = filepath.Join(dir, strings.TrimSuffix(pat, "/...")), true
		default:
			base = filepath.Join(dir, pat)
		}
		if !recursive {
			if hasGoFiles(base) {
				dirs[base] = true
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	l := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		parsed:  map[string]*rawPackage{},
		checked: map[string]*Package{},
	}
	l.fallback = importer.ForCompiler(l.fset, "source", nil)

	var paths []string
	for d := range dirs {
		p, err := l.parseDir(d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			paths = append(paths, p.path)
		}
	}
	sort.Strings(paths)
	var out []*Package
	for _, path := range paths {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if sourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func sourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// rawPackage is a parsed-but-unchecked package.
type rawPackage struct {
	path  string
	dir   string
	files []*ast.File
}

// loader type-checks module packages in dependency order, resolving
// intra-module imports from its own results and everything else (the
// standard library — the module has no other dependencies) through the
// stdlib source importer.
type loader struct {
	fset     *token.FileSet
	root     string
	modPath  string
	fallback types.Importer
	parsed   map[string]*rawPackage // import path -> parsed
	checked  map[string]*Package    // import path -> checked
	checking []string               // DFS stack for cycle reporting
}

func (l *loader) parseDir(dir string) (*rawPackage, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	if p, ok := l.parsed[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &rawPackage{path: path, dir: dir}
	for _, e := range ents {
		if !sourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	l.parsed[path] = p
	return p, nil
}

// check type-checks one module package, recursively checking its
// intra-module imports first.
func (l *loader) check(path string) (*Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	for _, on := range l.checking {
		if on == path {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	raw, ok := l.parsed[path]
	if !ok {
		// An intra-module import outside the requested patterns: parse it
		// on demand so the requested packages still type-check.
		rel := strings.TrimPrefix(path, l.modPath)
		p, err := l.parseDir(filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(rel, "/"))))
		if err != nil || p == nil {
			return nil, fmt.Errorf("lint: cannot resolve import %q: %v", path, err)
		}
		raw = p
	}
	l.checking = append(l.checking, path)
	defer func() { l.checking = l.checking[:len(l.checking)-1] }()

	// Check dependencies first so the importer below finds them ready.
	for _, f := range raw.files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == l.modPath || strings.HasPrefix(ip, l.modPath+"/") {
				if _, err := l.check(ip); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, raw.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Dir:   raw.dir,
		Fset:  l.fset,
		Files: raw.files,
		Types: tpkg,
		Info:  info,
	}
	l.checked[path] = p
	return p, nil
}

// loaderImporter resolves imports during type checking: module packages
// from the loader's own results, the rest from the source importer.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(li)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if from, ok := l.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, l.root, 0)
	}
	return l.fallback.Import(path)
}
