package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions and
// indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether the call invokes a package-level function
// (not a method) of pkgPath named one of names; with no names given, any
// function of the package matches.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// methodOn reports whether the call invokes a method named name whose
// receiver's type (after stripping pointers) is declared in a package
// satisfying pkgMatch.
func methodOn(info *types.Info, call *ast.CallExpr, name string, pkgMatch func(string) bool) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return pkgMatch(typePkgPath(sig.Recv().Type()))
}

// typePkgPath returns the declaring package path of a (possibly pointer
// to a) named type, or "" for unnamed types and types from no package.
func typePkgPath(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// typeName returns "pkgpath.Name" for a (possibly pointer to a) named
// type, or "" otherwise.
func typeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return ""
	}
	if named.Obj().Pkg() == nil {
		return named.Obj().Name()
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// usesAny reports whether the subtree mentions any of the objects.
func usesAny(info *types.Info, node ast.Node, objs map[types.Object]bool) bool {
	if node == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	switch typeName(t) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	return false
}

// funcScope returns pkg-internal suffix matching: whether path (an
// import path) ends with the given suffix on a path-segment boundary.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// terminates reports whether a statement list certainly diverts control
// (return / panic / continuous loop) — used to decide whether lock state
// changes inside a branch propagate past it.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// funcBodies yields every function body in the file along with the
// enclosing *ast.FuncDecl or *ast.FuncLit, outermost first.
func funcBodies(f *ast.File, visit func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Body)
			}
		case *ast.FuncLit:
			if fn.Body != nil {
				visit(fn, fn.Body)
			}
		}
		return true
	})
}
