package lint

// program.go is the interprocedural layer under lazlint's protocol-
// invariant rules. The original suite (PR 4) saw one function at a time,
// which is exactly why it could not catch the PR 6–9 bug classes: an
// authentication check lives in verify.go while the state mutation it
// guards lives in order.go, and a quorum tally is filled in one handler
// but counted in another. BuildProgram walks every loaded package once
// and produces, per function:
//
//   - a call graph (direct callees with call sites, plus reverse edges),
//   - the set of local objects derived from the receiver and from any
//     *Message-typed parameter (a one-function taint approximation:
//     `in := r.inst(seq)` makes `in` receiver-derived, `req := *msg.Request`
//     makes `req` message-derived),
//   - summary flags closed transitively over the call graph: whether the
//     function may perform signature verification, mutate its receiver,
//     send on the network, check membership, window-compare a parameter,
//     or compare a message's epoch/view against local state.
//
// The analysis is deliberately flow-approximate (source order stands in
// for dominance) and under-binds aliases; rules built on it trade missed
// corner cases for a near-zero false-positive rate, with justified
// `//lazlint:allow` directives as the escape hatch where a protocol
// deliberately breaks the pattern (e.g. cross-epoch checkpoint votes).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole loaded module plus its interprocedural indexes.
type Program struct {
	Pkgs []*Package
	// Funcs maps every function/method with a body to its analysis.
	Funcs map[*types.Func]*FuncInfo
}

// CallSite is one direct call edge in the call graph.
type CallSite struct {
	Caller *FuncInfo
	Callee *types.Func
	Call   *ast.CallExpr
	// RecvRooted reports whether the call's receiver expression is
	// derived from the caller's own receiver (r.inst(..), r.toctl.observe).
	RecvRooted bool
}

// FuncInfo is the per-function summary.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Calls   []*CallSite
	Callers []*CallSite

	// RecvObj is the receiver variable (nil for plain functions).
	RecvObj types.Object
	// RecvDerived holds RecvObj plus locals assigned from receiver-
	// derived expressions.
	RecvDerived map[types.Object]bool
	// MsgDerived holds the *Message-typed parameters plus locals
	// assigned from message-derived expressions.
	MsgDerived map[types.Object]bool
	// Params are the declared parameter objects in order.
	Params []types.Object

	// Direct facts (this body only).
	VerifiesDirect     bool // calls something named Verify/VerifySig
	MutatesRecvDirect  bool // assigns through a receiver-derived path
	SendsNetDirect     bool // calls something named Send
	ChecksMemberDirect bool // calls Contains or comma-ok indexes a Keys map
	// TwoSidedParam: some parameter is bounded from below AND above by
	// ordered comparisons in this body (the inWindow shape).
	TwoSidedParam bool
	// ComparesMsgState: compares a message-derived Epoch/View/NewView
	// field against anything.
	ComparesMsgState bool

	// Transitive closures over the call graph.
	Verifies         bool
	MutatesRecv      bool // direct, or a receiver-rooted call to a mutator
	SendsNet         bool
	ChecksMembership bool
}

// BuildProgram analyzes every function in the loaded packages.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, Funcs: map[*types.Func]*FuncInfo{}}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				prog.Funcs[obj] = analyzeFunc(p, fd, obj)
			}
		}
	}
	// Reverse edges.
	for _, info := range prog.Funcs {
		for _, cs := range info.Calls {
			if callee, ok := prog.Funcs[cs.Callee]; ok {
				callee.Callers = append(callee.Callers, cs)
			}
		}
	}
	// Deterministic caller order (build order follows map iteration).
	for _, info := range prog.Funcs {
		sort.Slice(info.Callers, func(i, j int) bool {
			return info.Callers[i].Call.Pos() < info.Callers[j].Call.Pos()
		})
	}
	prog.closeSummaries()
	return prog
}

// FuncOf returns the analysis for a resolved function, or nil.
func (prog *Program) FuncOf(f *types.Func) *FuncInfo {
	if f == nil {
		return nil
	}
	return prog.Funcs[f]
}

// PackageOf finds the loaded package with the given import-path suffix.
func (prog *Program) PackageOf(suffix string) *Package {
	for _, p := range prog.Pkgs {
		if pathHasSuffix(p.Path, suffix) {
			return p
		}
	}
	return nil
}

// SortedFuncs returns every analyzed function in source order — rules
// iterate this instead of the Funcs map so findings are deterministic.
func (prog *Program) SortedFuncs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(prog.Funcs))
	for _, info := range prog.Funcs {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

func analyzeFunc(p *Package, fd *ast.FuncDecl, obj *types.Func) *FuncInfo {
	info := &FuncInfo{Obj: obj, Decl: fd, Pkg: p}

	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		info.RecvObj = p.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if o := p.Info.Defs[name]; o != nil {
				info.Params = append(info.Params, o)
			}
		}
	}

	recvSeeds := map[types.Object]bool{}
	if info.RecvObj != nil {
		recvSeeds[info.RecvObj] = true
	}
	msgSeeds := map[types.Object]bool{}
	for _, o := range info.Params {
		if isNamedType(o.Type(), "Message") {
			msgSeeds[o] = true
		}
	}
	info.RecvDerived = derivedSet(p, fd.Body, recvSeeds)
	info.MsgDerived = derivedSet(p, fd.Body, msgSeeds)

	lower := map[types.Object]bool{}
	upper := map[types.Object]bool{}
	paramSet := map[types.Object]bool{}
	for _, o := range info.Params {
		paramSet[o] = true
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(p.Info, n)
			if callee != nil {
				cs := &CallSite{Caller: info, Callee: callee, Call: n}
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					cs.RecvRooted = usesAny(p.Info, sel.X, info.RecvDerived)
				}
				info.Calls = append(info.Calls, cs)
				switch callee.Name() {
				case "Verify", "VerifySig":
					info.VerifiesDirect = true
				case "Contains":
					info.ChecksMemberDirect = true
				case "Send":
					info.SendsNetDirect = true
				}
			} else if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if rootedIn(p.Info, n.Args[0], info.RecvDerived) {
					info.MutatesRecvDirect = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, bare := lhs.(*ast.Ident); bare {
					continue // binding a local is not a receiver mutation
				}
				if rootedIn(p.Info, lhs, info.RecvDerived) {
					info.MutatesRecvDirect = true
				}
			}
		case *ast.IncDecStmt:
			if _, bare := n.X.(*ast.Ident); !bare && rootedIn(p.Info, n.X, info.RecvDerived) {
				info.MutatesRecvDirect = true
			}
		case *ast.IndexExpr:
			// Comma-ok read of a field named Keys: the membership-lookup
			// idiom (`pub, ok := r.membership.Keys[id]`).
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "Keys" {
				info.ChecksMemberDirect = true
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				classifyBound(p.Info, n, paramSet, lower, upper)
				info.ComparesMsgState = info.ComparesMsgState || comparesMsgField(p.Info, n, info.MsgDerived)
			case token.EQL, token.NEQ:
				info.ComparesMsgState = info.ComparesMsgState || comparesMsgField(p.Info, n, info.MsgDerived)
			}
		}
		return true
	})
	for o := range lower {
		if upper[o] {
			info.TwoSidedParam = true
		}
	}
	return info
}

// classifyBound records which side of an ordered comparison a parameter
// sits on: `p > x` / `x < p` bound p from below, `p < x` / `x > p` from
// above. A parameter bounded both ways is window-checked (inWindow).
func classifyBound(ti *types.Info, b *ast.BinaryExpr, params, lower, upper map[types.Object]bool) {
	mark := func(e ast.Expr, isUpper bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		o := ti.Uses[id]
		if o == nil || !params[o] {
			return
		}
		if isUpper {
			upper[o] = true
		} else {
			lower[o] = true
		}
	}
	switch b.Op {
	case token.LSS, token.LEQ: // X < Y: X bounded above, Y below
		mark(b.X, true)
		mark(b.Y, false)
	case token.GTR, token.GEQ: // X > Y: X bounded below, Y above
		mark(b.X, false)
		mark(b.Y, true)
	}
}

// comparesMsgField reports whether either operand is a selector of a
// protocol-state field (Epoch/View/NewView) on a message-derived value.
func comparesMsgField(ti *types.Info, b *ast.BinaryExpr, msgDerived map[types.Object]bool) bool {
	for _, e := range []ast.Expr{b.X, b.Y} {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Epoch", "View", "NewView":
				if usesAny(ti, sel.X, msgDerived) {
					return true
				}
			}
		}
	}
	return false
}

// closeSummaries propagates the direct facts over the call graph to a
// fixed point. Verifies/SendsNet/ChecksMembership flow through every
// edge; MutatesRecv flows only through receiver-rooted calls (a callee
// that mutates ITS receiver mutates ours only when invoked on a value
// derived from ours).
func (prog *Program) closeSummaries() {
	for _, info := range prog.Funcs {
		info.Verifies = info.VerifiesDirect
		info.SendsNet = info.SendsNetDirect
		info.ChecksMembership = info.ChecksMemberDirect
		info.MutatesRecv = info.MutatesRecvDirect
	}
	for changed := true; changed; {
		changed = false
		for _, info := range prog.Funcs {
			for _, cs := range info.Calls {
				callee := prog.Funcs[cs.Callee]
				if callee == nil {
					continue
				}
				if callee.Verifies && !info.Verifies {
					info.Verifies = true
					changed = true
				}
				if callee.SendsNet && !info.SendsNet {
					info.SendsNet = true
					changed = true
				}
				if callee.ChecksMembership && !info.ChecksMembership {
					info.ChecksMembership = true
					changed = true
				}
				if cs.RecvRooted && callee.MutatesRecv && !info.MutatesRecv {
					info.MutatesRecv = true
					changed = true
				}
			}
		}
	}
}

// derivedSet computes the objects transitively assigned from the seeds
// within one function body (flow-insensitive fixpoint over assignments
// and range bindings).
func derivedSet(p *Package, body ast.Node, seeds map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(seeds))
	for o := range seeds {
		out[o] = true
	}
	if len(seeds) == 0 {
		return out
	}
	bind := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		o := p.Info.Defs[id]
		if o == nil {
			o = p.Info.Uses[id]
		}
		if o == nil || out[o] {
			return false
		}
		out[o] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					var rhs ast.Node
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
					if rhs != nil && usesAny(p.Info, rhs, out) && bind(lhs) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if usesAny(p.Info, st.X, out) {
					for _, kv := range []ast.Expr{st.Key, st.Value} {
						if kv != nil && bind(kv) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// rootedIn unwraps selectors/indexes/derefs to the base identifier and
// reports whether it is one of the given objects.
func rootedIn(ti *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			o := ti.Uses[x]
			if o == nil {
				o = ti.Defs[x]
			}
			return o != nil && objs[o]
		default:
			return false
		}
	}
}

// isNamedType reports whether t (possibly behind a pointer) is a named
// type with the given name, in any package. Name-based matching lets the
// rules recognize both the production types and test-fixture doubles.
func isNamedType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == name
}

// isDigestType reports whether the type's name contains "Digest" —
// matching bft.Digest and any fixture double.
func isDigestType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && strings.Contains(named.Obj().Name(), "Digest")
}

// isHandler reports whether the function is an inbox message handler:
// a method named on<X> taking a *Message parameter. Returns the message
// parameter object.
func (fi *FuncInfo) isHandler() (types.Object, bool) {
	if fi.Decl.Recv == nil || fi.RecvObj == nil {
		return nil, false
	}
	name := fi.Obj.Name()
	if !strings.HasPrefix(name, "on") || len(name) < 3 || name[2] < 'A' || name[2] > 'Z' {
		return nil, false
	}
	for _, o := range fi.Params {
		if isNamedType(o.Type(), "Message") {
			return o, true
		}
	}
	return nil, false
}
