package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// allowDirective is the suppression syntax:
//
//	//lazlint:allow <rule>(<reason>)
//
// The directive suppresses findings of <rule> on its own line and on the
// line directly below it (so it can ride at end-of-line or stand above
// the offending statement). The reason is mandatory: a suppression
// without a recorded justification is itself a finding.
const allowPrefix = "lazlint:allow"

var allowRE = regexp.MustCompile(`^([a-z][a-z0-9-]*)\((.*)\)$`)

// allowDirective is one parsed, well-formed suppression with its usage
// state: a directive that survives a run without suppressing anything is
// stale and reported by the suppression audit (a suppression whose
// finding is gone documents a hazard that no longer exists — or worse,
// masks the next real finding that appears on its line).
type allowDirective struct {
	rule string
	pos  token.Position
	used bool
}

// allowIndex holds every well-formed directive across the whole run,
// indexed by file and line for suppression lookups.
type allowIndex struct {
	byLoc map[string]map[int][]*allowDirective
	all   []*allowDirective
}

func newAllowIndex() *allowIndex {
	return &allowIndex{byLoc: map[string]map[int][]*allowDirective{}}
}

func (ai *allowIndex) add(d *allowDirective) {
	lines := ai.byLoc[d.pos.Filename]
	if lines == nil {
		lines = map[int][]*allowDirective{}
		ai.byLoc[d.pos.Filename] = lines
	}
	lines[d.pos.Line] = append(lines[d.pos.Line], d)
	ai.all = append(ai.all, d)
}

// suppresses reports whether a finding of rule at pos is covered by a
// directive on the same line or the line above, marking any matching
// directive as used.
func (ai *allowIndex) suppresses(rule string, pos token.Position) bool {
	lines := ai.byLoc[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.rule == rule {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale reports every directive whose rule actually ran this invocation
// yet suppressed nothing. Directives for rules outside the selected set
// are skipped: a narrowed -rules run must not condemn suppressions it
// never exercised.
func (ai *allowIndex) stale(ran map[string]bool) []Finding {
	var out []Finding
	for _, d := range ai.all {
		if d.used || !ran[d.rule] {
			continue
		}
		f := Finding{
			Rule: "stale-directive",
			Pos:  d.pos,
			Message: "//lazlint:allow " + d.rule + "(...) suppresses nothing; " +
				"remove the directive or restore the justification it documents",
		}
		f.normalize()
		out = append(out, f)
	}
	return out
}

// collectAllows scans a package's comments for allow directives, adding
// well-formed ones to the index and returning findings for malformed
// ones.
func collectAllows(ai *allowIndex, p *Package) []Finding {
	var bad []Finding
	known := map[string]bool{}
	for _, name := range RuleNames() {
		known[name] = true
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(strings.TrimSpace(rest))
				if m == nil {
					bad = append(bad, finding(p.Fset, c.Pos(), "bad-directive",
						"malformed directive %q; want //lazlint:allow rule(reason)", text))
					continue
				}
				rule, reason := m[1], strings.TrimSpace(m[2])
				if !known[rule] {
					bad = append(bad, finding(p.Fset, c.Pos(), "bad-directive",
						"directive names unknown rule %q (known: %s)", rule, strings.Join(RuleNames(), ", ")))
					continue
				}
				if reason == "" {
					bad = append(bad, finding(p.Fset, c.Pos(), "bad-directive",
						"directive for %q has no reason; suppressions must be justified", rule))
					continue
				}
				ai.add(&allowDirective{rule: rule, pos: pos})
			}
		}
	}
	return bad
}
