package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// allowDirective is the suppression syntax:
//
//	//lazlint:allow <rule>(<reason>)
//
// The directive suppresses findings of <rule> on its own line and on the
// line directly below it (so it can ride at end-of-line or stand above
// the offending statement). The reason is mandatory: a suppression
// without a recorded justification is itself a finding.
const allowPrefix = "lazlint:allow"

var allowRE = regexp.MustCompile(`^([a-z][a-z0-9-]*)\((.*)\)$`)

// allowIndex maps file -> line -> suppressed rule names.
type allowIndex map[string]map[int]map[string]bool

// suppresses reports whether a finding of rule at pos is covered by a
// directive on the same line or the line above.
func (ai allowIndex) suppresses(rule string, pos token.Position) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][rule] || lines[pos.Line-1][rule]
}

// collectAllows scans a package's comments for allow directives,
// returning the index plus findings for malformed ones.
func collectAllows(p *Package) (allowIndex, []Finding) {
	idx := allowIndex{}
	var bad []Finding
	known := map[string]bool{}
	for _, name := range RuleNames() {
		known[name] = true
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(strings.TrimSpace(rest))
				if m == nil {
					bad = append(bad, finding(p.Fset, c.Pos(), "bad-directive",
						"malformed directive %q; want //lazlint:allow rule(reason)", text))
					continue
				}
				rule, reason := m[1], strings.TrimSpace(m[2])
				if !known[rule] {
					bad = append(bad, finding(p.Fset, c.Pos(), "bad-directive",
						"directive names unknown rule %q (known: %s)", rule, strings.Join(RuleNames(), ", ")))
					continue
				}
				if reason == "" {
					bad = append(bad, finding(p.Fset, c.Pos(), "bad-directive",
						"directive for %q has no reason; suppressions must be justified", rule))
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][rule] = true
			}
		}
	}
	return idx, bad
}
