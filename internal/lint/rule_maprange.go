package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ruleMapRangeDigest flags map iterations whose order can reach a
// digest: Go randomizes map-range order per run, so any hash, signed
// message or serialized state whose bytes depend on that order differs
// across replicas executing the same command — the exact determinism the
// paper's replica-coordination assumption (§5) forbids losing. A forked
// checkpoint digest is silent until quorum stability fails.
//
// Within the body of a `for k, v := range m` over a map, the rule
// reports:
//
//   - a range-bound variable flowing into a crypto hash call
//     (sha256.Sum256 and friends, hash.Hash Write/Sum, fmt.Fprintf into
//     a hash.Hash);
//   - a range-bound variable flowing into a gob Encode (serialized
//     message or snapshot bytes);
//   - a range-bound variable assigned to a Digest-typed (or [N]byte
//     array) variable declared outside the loop (order decides which
//     digest wins — the checkStable tally bug class).
//
// The fix is the pattern used throughout the repo: flatten the map into
// a slice, sort it, then hash/encode the slice.
type ruleMapRangeDigest struct{}

func (ruleMapRangeDigest) Name() string { return "maprange-digest" }
func (ruleMapRangeDigest) Doc() string {
	return "map iteration order must not reach a digest, hash or serialized message"
}

// hashPkgs are packages whose calls consume bytes into a digest.
var hashPkgs = map[string]bool{
	"crypto/sha256": true,
	"crypto/sha512": true,
	"crypto/sha1":   true,
	"crypto/md5":    true,
	"crypto/hmac":   true,
	"hash/fnv":      true,
}

func isHashRecv(t types.Type) bool {
	p := typePkgPath(t)
	return p == "hash" || strings.HasPrefix(p, "crypto/") || strings.HasPrefix(p, "hash/")
}

func (r ruleMapRangeDigest) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			bound := map[types.Object]bool{}
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				id, ok := e.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := p.Info.Defs[id]; obj != nil {
					bound[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					bound[obj] = true
				}
			}
			if len(bound) == 0 {
				// Even `for range m` bodies can observe order through the
				// map itself, but without bound variables the common
				// counter loops are safe; skip.
				return true
			}
			out = append(out, r.checkLoop(p, rs, bound)...)
			return true
		})
	}
	return out
}

func (r ruleMapRangeDigest) checkLoop(p *Package, rs *ast.RangeStmt, bound map[types.Object]bool) []Finding {
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, finding(p.Fset, n.Pos(), r.Name(), format, args...))
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			f := calleeFunc(p.Info, n)
			if f == nil {
				return true
			}
			argsUse := false
			for _, a := range n.Args {
				if usesAny(p.Info, a, bound) {
					argsUse = true
					break
				}
			}
			switch {
			case f.Pkg() != nil && hashPkgs[f.Pkg().Path()] && argsUse:
				report(n, "map iteration value reaches %s.%s; iterate a sorted slice instead",
					f.Pkg().Name(), f.Name())
			case (f.Name() == "Write" || f.Name() == "Sum") && argsUse &&
				methodOn(p.Info, n, f.Name(), func(pkg string) bool {
					return pkg == "hash" || strings.HasPrefix(pkg, "crypto/")
				}):
				report(n, "map iteration value written into a hash; iterate a sorted slice instead")
			case f.Name() == "Encode" && argsUse &&
				methodOn(p.Info, n, "Encode", func(pkg string) bool { return pkg == "encoding/gob" }):
				report(n, "map iteration value gob-encoded in iteration order; flatten and sort first")
			case isPkgFunc(p.Info, n, "fmt", "Fprintf", "Fprint", "Fprintln") && len(n.Args) > 0:
				if isHashRecv(p.Info.TypeOf(n.Args[0])) {
					rest := false
					for _, a := range n.Args[1:] {
						if usesAny(p.Info, a, bound) {
							rest = true
							break
						}
					}
					if rest {
						report(n, "map iteration value printed into a hash; iterate a sorted slice instead")
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !usesAny(p.Info, rhs, bound) {
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[id] // plain `=`: target declared elsewhere
				if obj == nil {
					continue
				}
				if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
					continue // loop-local temporary
				}
				if !digestLike(obj.Type()) {
					continue
				}
				report(n, "map iteration order decides which digest lands in %q; tally over sorted candidates instead", id.Name)
			}
		}
		return true
	})
	return out
}

// digestLike reports whether t is a content-hash value: a named type
// called Digest, or a fixed [N]byte array (sha sums).
func digestLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if named.Obj() != nil && named.Obj().Name() == "Digest" {
			return true
		}
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		if basic, ok := arr.Elem().(*types.Basic); ok && basic.Kind() == types.Byte {
			return true
		}
	}
	return false
}
