package workload

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"lazarus/internal/apps/kvs"
)

func TestZipfianSkewAndBounds(t *testing.T) {
	z, err := NewZipfian(1000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Hot-key property: key 0 must be far more popular than uniform.
	if counts[0] < draws/100 {
		t.Errorf("key 0 drawn %d times; zipfian skew missing", counts[0])
	}
	// But not everything: a decent spread of distinct keys.
	if len(counts) < 100 {
		t.Errorf("only %d distinct keys in %d draws", len(counts), draws)
	}
}

func TestZipfianValidation(t *testing.T) {
	if _, err := NewZipfian(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty key space accepted")
	}
	if _, err := NewZipfian(10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestYCSBMix(t *testing.T) {
	g, err := NewYCSB(YCSBConfig{Records: 100, ReadFraction: 0.5, ValueSize: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := 0, 0
	for i := 0; i < 2000; i++ {
		payload, isRead, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		op, err := kvs.DecodeOp(payload)
		if err != nil {
			t.Fatal(err)
		}
		if isRead {
			reads++
			if op.Kind != kvs.OpGet {
				t.Fatalf("read flagged but op kind %d", op.Kind)
			}
		} else {
			writes++
			if op.Kind != kvs.OpPut || len(op.Value) != 64 {
				t.Fatalf("write op wrong: kind %d, %d bytes", op.Kind, len(op.Value))
			}
		}
	}
	frac := float64(reads) / float64(reads+writes)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("read fraction %.2f, want ~0.5", frac)
	}
}

func TestYCSBValidation(t *testing.T) {
	bad := []YCSBConfig{
		{Records: 0, ReadFraction: 0.5, ValueSize: 1},
		{Records: 10, ReadFraction: -0.1, ValueSize: 1},
		{Records: 10, ReadFraction: 1.1, ValueSize: 1},
		{Records: 10, ReadFraction: 0.5, ValueSize: 0},
	}
	for i, cfg := range bad {
		if _, err := NewYCSB(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestYCSBLoadOps(t *testing.T) {
	g, err := NewYCSB(YCSBConfig{Records: 25, ReadFraction: 0.5, ValueSize: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ops, err := g.LoadOps(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 25 {
		t.Fatalf("load ops = %d, want 25", len(ops))
	}
	op, err := kvs.DecodeOp(ops[3])
	if err != nil || op.Kind != kvs.OpPut || op.Key != "user0000000003" {
		t.Errorf("load op 3 = %+v, %v", op, err)
	}
}

func TestMicrobench(t *testing.T) {
	m, err := NewMicrobench(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Next()) != 1024 {
		t.Errorf("payload size %d", len(m.Next()))
	}
	zero, err := NewMicrobench(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Next()) != 0 {
		t.Error("0/0 payload not empty")
	}
	if _, err := NewMicrobench(-1); err == nil {
		t.Error("negative size accepted")
	}
	// Echo app answers with the request itself.
	var app EchoApp
	if got := app.Execute(m.Next()); len(got) != 1024 {
		t.Errorf("echo returned %d bytes", len(got))
	}
}

// fakeInvoker simulates a service with fixed latency.
type fakeInvoker struct {
	delay time.Duration
	calls atomic.Uint64
	fail  bool
}

func (f *fakeInvoker) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	f.calls.Add(1)
	if f.fail {
		return nil, errors.New("boom")
	}
	select {
	case <-time.After(f.delay):
		return op, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func TestRunClosedLoop(t *testing.T) {
	inv := []Invoker{
		&fakeInvoker{delay: time.Millisecond},
		&fakeInvoker{delay: time.Millisecond},
	}
	src := func() ([]byte, error) { return []byte("op"), nil }
	res, err := RunClosedLoop(context.Background(), inv, src, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 100 {
		t.Errorf("only %d ops in 200ms with 1ms latency × 2 clients", res.Ops)
	}
	if res.Throughput() < 500 {
		t.Errorf("throughput %.0f ops/s, want ~2000", res.Throughput())
	}
	if res.Errors != 0 {
		t.Errorf("unexpected errors: %d", res.Errors)
	}
}

func TestRunClosedLoopValidation(t *testing.T) {
	src := func() ([]byte, error) { return nil, nil }
	if _, err := RunClosedLoop(context.Background(), nil, src, time.Second); err == nil {
		t.Error("no clients accepted")
	}
	if _, err := RunClosedLoop(context.Background(), []Invoker{&fakeInvoker{}}, src, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRunCount(t *testing.T) {
	inv := []Invoker{&fakeInvoker{}, &fakeInvoker{}, &fakeInvoker{}}
	ops := make([][]byte, 50)
	for i := range ops {
		ops[i] = []byte{byte(i)}
	}
	res, err := RunCount(context.Background(), inv, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 50 || res.Errors != 0 {
		t.Errorf("result = %+v", res)
	}
	total := uint64(0)
	for _, i := range inv {
		total += i.(*fakeInvoker).calls.Load()
	}
	if total != 50 {
		t.Errorf("invoked %d times, want exactly 50", total)
	}
}

func TestRunCountWithFailures(t *testing.T) {
	inv := []Invoker{&fakeInvoker{fail: true}}
	res, err := RunCount(context.Background(), inv, [][]byte{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 2 || res.Ops != 0 {
		t.Errorf("result = %+v", res)
	}
}
