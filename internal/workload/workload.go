// Package workload generates the benchmark loads of the paper's
// performance evaluation (§7): the BFT-SMaRt microbenchmark (0/0 and
// 1024/1024 byte request/response payloads, §7.1–7.2), a YCSB-style
// read/write key-value workload (§7.3–7.4), and closed-loop client
// drivers that measure sustained throughput.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"lazarus/internal/apps/kvs"
)

// Zipfian draws keys with the YCSB zipfian distribution (Gray et al.'s
// incremental method), so a small set of hot keys dominates.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
	rng   *rand.Rand
}

// NewZipfian builds a generator over [0, n) with the YCSB default skew
// (theta = 0.99).
func NewZipfian(n uint64, rng *rand.Rand) (*Zipfian, error) {
	const theta = 0.99
	if n == 0 {
		return nil, fmt.Errorf("workload: zipfian over empty key space")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z, nil
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws one key index.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Distribution selects the key-access pattern.
type Distribution int

// Distributions.
const (
	// DistUniform draws keys uniformly.
	DistUniform Distribution = iota + 1
	// DistZipfian draws keys with YCSB's default zipfian skew.
	DistZipfian
)

// YCSBConfig shapes a YCSB-style key-value workload.
type YCSBConfig struct {
	// Records is the key-space size.
	Records uint64
	// ReadFraction is the proportion of reads (0.5 = the paper's 50/50
	// workload).
	ReadFraction float64
	// ValueSize is the value payload in bytes (paper: 1 kB in §7.3,
	// 4 kB in §7.4).
	ValueSize int
	// Distribution selects the access pattern (default zipfian).
	Distribution Distribution
	// Seed drives the generator.
	Seed int64
}

// YCSB generates serialized KVS operations.
type YCSB struct {
	cfg   YCSBConfig
	rng   *rand.Rand
	zipf  *Zipfian
	value []byte
}

// NewYCSB validates the config and builds a generator.
func NewYCSB(cfg YCSBConfig) (*YCSB, error) {
	switch {
	case cfg.Records == 0:
		return nil, fmt.Errorf("workload: zero records")
	case cfg.ReadFraction < 0 || cfg.ReadFraction > 1:
		return nil, fmt.Errorf("workload: read fraction %v outside [0,1]", cfg.ReadFraction)
	case cfg.ValueSize <= 0:
		return nil, fmt.Errorf("workload: value size %d must be positive", cfg.ValueSize)
	}
	if cfg.Distribution == 0 {
		cfg.Distribution = DistZipfian
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &YCSB{cfg: cfg, rng: rng, value: make([]byte, cfg.ValueSize)}
	for i := range g.value {
		g.value[i] = byte('a' + i%26)
	}
	if cfg.Distribution == DistZipfian {
		z, err := NewZipfian(cfg.Records, rng)
		if err != nil {
			return nil, err
		}
		g.zipf = z
	}
	return g, nil
}

// key draws the next key.
func (g *YCSB) key() string {
	var idx uint64
	if g.zipf != nil {
		idx = g.zipf.Next() % g.cfg.Records
	} else {
		idx = uint64(g.rng.Int63n(int64(g.cfg.Records)))
	}
	return fmt.Sprintf("user%010d", idx)
}

// Next returns one serialized operation and whether it is a read.
func (g *YCSB) Next() ([]byte, bool, error) {
	read := g.rng.Float64() < g.cfg.ReadFraction
	var op kvs.Op
	if read {
		op = kvs.Op{Kind: kvs.OpGet, Key: g.key()}
	} else {
		op = kvs.Op{Kind: kvs.OpPut, Key: g.key(), Value: g.value}
	}
	payload, err := kvs.EncodeOp(op)
	return payload, read, err
}

// LoadOps returns the operations that preload the store with every record
// (the YCSB load phase). count == 0 loads all records.
func (g *YCSB) LoadOps(count uint64) ([][]byte, error) {
	if count == 0 || count > g.cfg.Records {
		count = g.cfg.Records
	}
	out := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		payload, err := kvs.EncodeOp(kvs.Op{
			Kind:  kvs.OpPut,
			Key:   fmt.Sprintf("user%010d", i),
			Value: g.value,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, payload)
	}
	return out, nil
}

// Microbench generates the BFT-SMaRt microbenchmark payloads: opaque
// requests of a fixed size answered by same-sized responses (the service
// is an echo). Size 0 produces the 0/0 workload.
type Microbench struct {
	payload []byte
}

// NewMicrobench builds a generator for the given request size.
func NewMicrobench(size int) (*Microbench, error) {
	if size < 0 {
		return nil, fmt.Errorf("workload: negative payload size")
	}
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(i)
	}
	return &Microbench{payload: p}, nil
}

// Next returns the next request payload.
func (m *Microbench) Next() []byte { return m.payload }

// EchoApp is the microbenchmark service: it returns a response of the
// same size as the request (the "empty service" of §7.1).
type EchoApp struct{}

// Execute implements bft.Application.
func (EchoApp) Execute(op []byte) []byte { return op }

// Snapshot implements bft.Application.
func (EchoApp) Snapshot() ([]byte, error) { return nil, nil }

// Restore implements bft.Application.
func (EchoApp) Restore([]byte) error { return nil }
