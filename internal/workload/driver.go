package workload

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Invoker abstracts the client side of the replicated service (satisfied
// by *bft.Client).
type Invoker interface {
	Invoke(ctx context.Context, op []byte) ([]byte, error)
}

// OpSource produces operations for the driver.
type OpSource func() ([]byte, error)

// Result summarizes one driver run.
type Result struct {
	// Ops is the number of completed operations.
	Ops uint64
	// Errors is the number of failed invocations.
	Errors uint64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunClosedLoop drives the service with the given closed-loop clients
// (each issues its next operation as soon as the previous completes, the
// load model of the paper's benchmarks) for the given duration.
func RunClosedLoop(ctx context.Context, clients []Invoker, source OpSource, duration time.Duration) (Result, error) {
	if len(clients) == 0 {
		return Result{}, fmt.Errorf("workload: no clients")
	}
	if duration <= 0 {
		return Result{}, fmt.Errorf("workload: non-positive duration")
	}
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	var ops, errs atomic.Uint64
	var srcMu sync.Mutex
	nextOp := func() ([]byte, error) {
		srcMu.Lock()
		defer srcMu.Unlock()
		return source()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl Invoker) {
			defer wg.Done()
			for runCtx.Err() == nil {
				op, err := nextOp()
				if err != nil {
					errs.Add(1)
					return
				}
				if _, err := cl.Invoke(runCtx, op); err != nil {
					if runCtx.Err() != nil {
						return // deadline, not a service error
					}
					errs.Add(1)
					continue
				}
				ops.Add(1)
			}
		}(cl)
	}
	wg.Wait()
	return Result{Ops: ops.Load(), Errors: errs.Load(), Elapsed: time.Since(start)}, nil
}

// RunCount drives the clients until total operations complete (used for
// deterministic preloads and convergence tests).
func RunCount(ctx context.Context, clients []Invoker, ops [][]byte) (Result, error) {
	if len(clients) == 0 {
		return Result{}, fmt.Errorf("workload: no clients")
	}
	var idx, done, errs atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl Invoker) {
			defer wg.Done()
			for {
				i := idx.Add(1) - 1
				if i >= uint64(len(ops)) {
					return
				}
				if _, err := cl.Invoke(ctx, ops[i]); err != nil {
					errs.Add(1)
					continue
				}
				done.Add(1)
			}
		}(cl)
	}
	wg.Wait()
	return Result{Ops: done.Load(), Errors: errs.Load(), Elapsed: time.Since(start)}, nil
}
