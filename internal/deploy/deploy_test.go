package deploy

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/transport"
	"lazarus/internal/workload"
)

func testBuilder(t *testing.T) (*Builder, *transport.Memory) {
	t.Helper()
	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	t.Cleanup(func() { net.Close() })
	ctrlPub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(BuilderConfig{
		Net:           net,
		ControllerKey: ctrlPub,
		App:           func() bft.Application { return workload.EchoApp{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, net
}

func TestNewBuilderValidation(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	ctrlPub, _, _ := ed25519.GenerateKey(rand.Reader)
	app := func() bft.Application { return workload.EchoApp{} }
	if _, err := NewBuilder(BuilderConfig{ControllerKey: ctrlPub, App: app}); err == nil {
		t.Error("nil net accepted")
	}
	if _, err := NewBuilder(BuilderConfig{Net: net, ControllerKey: ctrlPub}); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := NewBuilder(BuilderConfig{Net: net, App: app}); err == nil {
		t.Error("missing controller key accepted")
	}
}

func TestPublicKeyStable(t *testing.T) {
	b, _ := testBuilder(t)
	k1, err := b.PublicKey(3)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := b.PublicKey(3)
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(k2) {
		t.Error("node key changed between calls")
	}
	k3, err := b.PublicKey(4)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Equal(k3) {
		t.Error("distinct nodes share a key")
	}
}

// fourNodeMembership builds a membership over nodes 0..3 of the builder.
func fourNodeMembership(t *testing.T, b *Builder) *bft.Membership {
	t.Helper()
	ids := []transport.NodeID{0, 1, 2, 3}
	keys := make(map[transport.NodeID]ed25519.PublicKey)
	for _, id := range ids {
		k, err := b.PublicKey(id)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = k
	}
	m, err := bft.NewMembership(ids, keys)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNodePowerCycle(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	if node.Running() {
		t.Error("fresh node reports running")
	}
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatal(err)
	}
	if !node.Running() || node.OS().ID != "UB16" || node.Replica() == nil {
		t.Errorf("node state after power-on: running=%v os=%s", node.Running(), node.OS().ID)
	}
	// Double power-on is rejected.
	if err := node.PowerOn("DE8", false); err == nil {
		t.Error("double power-on accepted")
	}
	if err := node.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if node.Running() || node.Replica() != nil {
		t.Error("node state after power-off")
	}
	// Re-provision with a different image.
	if err := node.PowerOn("DE8", false); err != nil {
		t.Fatalf("re-power-on: %v", err)
	}
	if node.OS().ID != "DE8" {
		t.Errorf("os after rebuild = %s", node.OS().ID)
	}
	node.PowerOff()
}

func TestNodePowerOnValidation(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	if err := node.PowerOn("NOPE", false); err == nil {
		t.Error("unknown OS image accepted")
	}
	if err := node.PowerOn("RH7", false); err == nil {
		t.Error("undeployable OS accepted")
	}
	if _, err := b.NewNode(1, nil); err == nil {
		t.Error("nil membership source accepted")
	}
}

func TestBootScaleDelays(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	defer net.Close()
	ctrlPub, _, _ := ed25519.GenerateKey(rand.Reader)
	b, err := NewBuilder(BuilderConfig{
		Net:           net,
		ControllerKey: ctrlPub,
		App:           func() bft.Application { return workload.EchoApp{} },
		BootScale:     0.001, // UB16 boots in 40s -> 40ms
	})
	if err != nil {
		t.Fatal(err)
	}
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatal(err)
	}
	defer node.PowerOff()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("boot took %v, want >= 40ms × scale", elapsed)
	}
}

// TestProvisionedGroupServes boots a full 4-node group via the deploy
// layer and runs a request through it.
func TestProvisionedGroupServes(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	defer net.Close()
	ctrlPub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	clientPub, clientPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	clientID := transport.ClientIDBase
	b, err := NewBuilder(BuilderConfig{
		Net:           net,
		ControllerKey: ctrlPub,
		ClientKeys:    map[transport.NodeID]ed25519.PublicKey{clientID: clientPub},
		App:           func() bft.Application { return workload.EchoApp{} },
		ReplicaTuning: func(cfg *bft.ReplicaConfig) {
			cfg.BatchDelay = time.Millisecond
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := fourNodeMembership(t, b)
	images := []string{"UB16", "DE8", "FB11", "OB61"}
	var nodes []*Node
	for i, img := range images {
		node, err := b.NewNode(transport.NodeID(i), func() *bft.Membership { return m.Clone() })
		if err != nil {
			t.Fatal(err)
		}
		if err := node.PowerOn(img, false); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.PowerOff()
		}
	}()
	client, err := bft.NewClient(bft.ClientConfig{
		ID:       clientID,
		Key:      clientPriv,
		Replicas: m.Replicas,
		F:        m.F(),
		Net:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.Invoke(ctx, []byte("ping"))
	if err != nil {
		t.Fatalf("invoke through provisioned group: %v", err)
	}
	if string(res) != "ping" {
		t.Errorf("echo = %q", res)
	}
}

func TestFaultPolicyPowerOn(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	b.SetFaultPolicy(&FaultPolicy{FailPowerOnOS: map[string]bool{"UB16": true}})
	if err := node.PowerOn("UB16", false); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("UB16 power-on err = %v, want ErrInjectedFault", err)
	}
	if node.Running() {
		t.Error("node running after injected boot failure")
	}
	// Other images are unaffected.
	if err := node.PowerOn("DE8", false); err != nil {
		t.Fatalf("DE8 power-on under UB16-only policy: %v", err)
	}
	node.PowerOff()
	// Clearing the policy heals the image.
	b.SetFaultPolicy(nil)
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatalf("UB16 power-on after clearing policy: %v", err)
	}
	node.PowerOff()
}

func TestFaultPolicyFailAfterBoots(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	b.SetFaultPolicy(&FaultPolicy{FailAfterBoots: 1})
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatalf("boot within budget: %v", err)
	}
	node.PowerOff()
	if err := node.PowerOn("DE8", false); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("boot past budget err = %v, want ErrInjectedFault", err)
	}
	if got := b.Boots(); got != 1 {
		t.Errorf("builder counted %d boots, want 1", got)
	}
}

func TestFaultPolicyStallBoot(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	b.SetFaultPolicy(&FaultPolicy{StallBoot: 60 * time.Millisecond})
	start := time.Now()
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatal(err)
	}
	defer node.PowerOff()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("stalled boot took %v, want >= 60ms", elapsed)
	}
}

func TestFaultPolicyFailPowerOff(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatal(err)
	}
	b.SetFaultPolicy(&FaultPolicy{FailPowerOff: true})
	if err := node.PowerOff(); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("power-off err = %v, want ErrInjectedFault", err)
	}
	if !node.Running() {
		t.Error("hung power-off stopped the replica anyway")
	}
	b.SetFaultPolicy(nil)
	if err := node.PowerOff(); err != nil {
		t.Fatalf("power-off after clearing policy: %v", err)
	}
	if node.Running() {
		t.Error("node still running after successful power-off")
	}
}

func TestPowerOffIdempotent(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	// Powering off an idle node is a no-op, even repeatedly, and even with
	// a FailPowerOff policy in force (nothing is running to hang).
	if err := node.PowerOff(); err != nil {
		t.Fatalf("power-off of idle node: %v", err)
	}
	b.SetFaultPolicy(&FaultPolicy{FailPowerOff: true})
	if err := node.PowerOff(); err != nil {
		t.Fatalf("power-off of idle node under policy: %v", err)
	}
	b.SetFaultPolicy(nil)
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatal(err)
	}
	if err := node.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if err := node.PowerOff(); err != nil {
		t.Fatalf("second power-off: %v", err)
	}
}

func TestRetireIsTerminal(t *testing.T) {
	b, _ := testBuilder(t)
	m := fourNodeMembership(t, b)
	node, err := b.NewNode(0, func() *bft.Membership { return m.Clone() })
	if err != nil {
		t.Fatal(err)
	}
	if err := node.PowerOn("UB16", false); err != nil {
		t.Fatal(err)
	}
	// Retire bypasses the driver path entirely: it stops the replica even
	// while a FailPowerOff fault would hang a regular power-off.
	b.SetFaultPolicy(&FaultPolicy{FailPowerOff: true})
	node.Retire()
	if node.Running() || !node.Retired() {
		t.Errorf("after retire: running=%v retired=%v", node.Running(), node.Retired())
	}
	b.SetFaultPolicy(nil)
	if err := node.PowerOn("DE8", false); !errors.Is(err, ErrRetired) {
		t.Errorf("power-on of retired node err = %v, want ErrRetired", err)
	}
}
