// Package deploy implements the Lazarus Deploy manager and replica
// builder (paper §5.1, module 3): it provisions ready-to-use replicas of
// a chosen OS image on execution-plane nodes — the role Vagrant and
// VirtualBox play in the prototype — and exposes each node through an
// LTU-drivable interface. Boot latency follows the OS profile (scaled,
// so tests run fast and the Figure 9 harness can use realistic values).
package deploy

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/transport"
)

// AppFactory builds the replicated service instance for a fresh replica.
type AppFactory func() bft.Application

// BuilderConfig configures the replica builder.
type BuilderConfig struct {
	// Net is the execution-plane network.
	Net transport.Network
	// ClientKeys and ControllerKey configure request authentication for
	// every built replica.
	ClientKeys    map[transport.NodeID]ed25519.PublicKey
	ControllerKey ed25519.PublicKey
	// App builds the service state machine.
	App AppFactory
	// BootScale multiplies catalog boot times (0 = instant boot, for
	// tests; 1 = realistic).
	BootScale float64
	// ReplicaTuning optionally adjusts each replica's protocol knobs.
	ReplicaTuning func(*bft.ReplicaConfig)
}

// Builder provisions nodes.
type Builder struct {
	cfg BuilderConfig

	mu   sync.Mutex
	keys map[transport.NodeID]ed25519.PrivateKey
	pubs map[transport.NodeID]ed25519.PublicKey
}

// NewBuilder validates the configuration.
func NewBuilder(cfg BuilderConfig) (*Builder, error) {
	switch {
	case cfg.Net == nil:
		return nil, fmt.Errorf("deploy: nil network")
	case cfg.App == nil:
		return nil, fmt.Errorf("deploy: nil app factory")
	case len(cfg.ControllerKey) != ed25519.PublicKeySize:
		return nil, fmt.Errorf("deploy: missing controller key")
	}
	return &Builder{
		cfg:  cfg,
		keys: make(map[transport.NodeID]ed25519.PrivateKey),
		pubs: make(map[transport.NodeID]ed25519.PublicKey),
	}, nil
}

// PublicKey returns (minting if necessary) the signing identity of a
// node. Identities are per-node, so a rebuilt node keeps its key and the
// membership can re-admit it.
func (b *Builder) PublicKey(node transport.NodeID) (ed25519.PublicKey, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.publicKeyLocked(node)
}

func (b *Builder) publicKeyLocked(node transport.NodeID) (ed25519.PublicKey, error) {
	if pub, ok := b.pubs[node]; ok {
		return pub, nil
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("deploy: minting key for node %d: %w", node, err)
	}
	b.pubs[node], b.keys[node] = pub, priv
	return pub, nil
}

// Node is one execution-plane machine: an LTU-drivable slot that can host
// one replica at a time.
type Node struct {
	id      transport.NodeID
	builder *Builder

	mu         sync.Mutex
	membership func() *bft.Membership // current-membership source for joins
	os         catalog.OS
	replica    *bft.Replica
	bootedAt   time.Time
}

// NewNode allocates a node slot. membershipFn supplies the membership a
// freshly booted replica should bootstrap against (the controller's
// current view of the group).
func (b *Builder) NewNode(id transport.NodeID, membershipFn func() *bft.Membership) (*Node, error) {
	if membershipFn == nil {
		return nil, fmt.Errorf("deploy: nil membership source")
	}
	if _, err := b.PublicKey(id); err != nil {
		return nil, err
	}
	return &Node{id: id, builder: b, membership: membershipFn}, nil
}

// ID returns the node id.
func (n *Node) ID() transport.NodeID { return n.id }

// Running reports whether a replica is active on the node.
func (n *Node) Running() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica != nil
}

// OS returns the OS image of the running replica (zero OS when off).
func (n *Node) OS() catalog.OS {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.os
}

// Replica returns the running replica handle (nil when off).
func (n *Node) Replica() *bft.Replica {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica
}

// PowerOn implements ltu.Driver: provision the OS image and start the
// replica. Boot latency follows the image profile scaled by BootScale.
func (n *Node) PowerOn(osID string, joining bool) error {
	os, err := catalog.ByID(osID)
	if err != nil {
		return err
	}
	if os.VM == nil {
		return fmt.Errorf("deploy: %s has no VM image", osID)
	}
	n.mu.Lock()
	if n.replica != nil {
		n.mu.Unlock()
		return fmt.Errorf("deploy: node %d already running %s", n.id, n.os.ID)
	}
	n.mu.Unlock()

	if n.builder.cfg.BootScale > 0 {
		time.Sleep(time.Duration(float64(os.VM.BootTime) * n.builder.cfg.BootScale))
	}

	n.builder.mu.Lock()
	if _, err := n.builder.publicKeyLocked(n.id); err != nil {
		n.builder.mu.Unlock()
		return err
	}
	key := n.builder.keys[n.id]
	n.builder.mu.Unlock()

	cfg := bft.ReplicaConfig{
		ID:            n.id,
		Key:           key,
		Membership:    n.membership(),
		App:           n.builder.cfg.App(),
		Net:           n.builder.cfg.Net,
		ClientKeys:    n.builder.cfg.ClientKeys,
		ControllerKey: n.builder.cfg.ControllerKey,
		Joining:       joining,
	}
	if n.builder.cfg.ReplicaTuning != nil {
		n.builder.cfg.ReplicaTuning(&cfg)
	}
	replica, err := bft.NewReplica(cfg)
	if err != nil {
		return fmt.Errorf("deploy: node %d: %w", n.id, err)
	}
	replica.Start()

	n.mu.Lock()
	n.os = os
	n.replica = replica
	n.bootedAt = time.Now()
	n.mu.Unlock()
	return nil
}

// PowerOff implements ltu.Driver: stop and wipe the replica.
func (n *Node) PowerOff() error {
	n.mu.Lock()
	replica := n.replica
	n.replica = nil
	n.os = catalog.OS{}
	n.mu.Unlock()
	if replica != nil {
		replica.Stop()
	}
	return nil
}
