// Package deploy implements the Lazarus Deploy manager and replica
// builder (paper §5.1, module 3): it provisions ready-to-use replicas of
// a chosen OS image on execution-plane nodes — the role Vagrant and
// VirtualBox play in the prototype — and exposes each node through an
// LTU-drivable interface. Boot latency follows the OS profile (scaled,
// so tests run fast and the Figure 9 harness can use realistic values).
package deploy

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/transport"
)

// Lifecycle errors.
var (
	// ErrInjectedFault marks failures produced by a FaultPolicy, so tests
	// and the swap engine can tell injected faults from real ones.
	ErrInjectedFault = errors.New("deploy: injected fault")
	// ErrRetired: the node was retired by the controller and can never
	// host a replica again.
	ErrRetired = errors.New("deploy: node retired")
)

// FaultPolicy injects deterministic failures into the node lifecycle so
// the control plane's failure handling is testable (Bedrock-style
// fault-injection-first). The zero value injects nothing. Policies are
// installed on the Builder and consulted by every Node it provisioned.
type FaultPolicy struct {
	// FailPowerOnOS fails PowerOn for exactly these OS image ids.
	FailPowerOnOS map[string]bool
	// FailAfterBoots fails every PowerOn once the builder has completed
	// this many successful boots (0 = never).
	FailAfterBoots int
	// StallBoot adds this delay to every PowerOn before it takes effect,
	// simulating an image that boots far slower than its profile.
	StallBoot time.Duration
	// FailPowerOff makes PowerOff return an error while leaving the
	// replica running — a hung hypervisor that ignores the kill.
	FailPowerOff bool
}

// AppFactory builds the replicated service instance for a fresh replica.
type AppFactory func() bft.Application

// BuilderConfig configures the replica builder.
type BuilderConfig struct {
	// Net is the execution-plane network.
	Net transport.Network
	// ClientKeys and ControllerKey configure request authentication for
	// every built replica.
	ClientKeys    map[transport.NodeID]ed25519.PublicKey
	ControllerKey ed25519.PublicKey
	// App builds the service state machine.
	App AppFactory
	// BootScale multiplies catalog boot times (0 = instant boot, for
	// tests; 1 = realistic).
	BootScale float64
	// ReplicaTuning optionally adjusts each replica's protocol knobs.
	ReplicaTuning func(*bft.ReplicaConfig)
}

// Builder provisions nodes.
type Builder struct {
	cfg BuilderConfig

	fault atomic.Pointer[FaultPolicy]
	boots atomic.Int64

	mu   sync.Mutex
	keys map[transport.NodeID]ed25519.PrivateKey
	pubs map[transport.NodeID]ed25519.PublicKey
}

// SetFaultPolicy installs (or, with nil, clears) the failure-injection
// policy consulted by every node of this builder.
func (b *Builder) SetFaultPolicy(p *FaultPolicy) { b.fault.Store(p) }

// FaultPolicy returns the active policy (nil = none).
func (b *Builder) FaultPolicy() *FaultPolicy { return b.fault.Load() }

// Boots returns how many successful PowerOns the builder has completed.
func (b *Builder) Boots() int { return int(b.boots.Load()) }

// powerOnFault evaluates the policy for a PowerOn of osID: the injected
// error to fail with, plus any boot stall to apply first.
func (b *Builder) powerOnFault(osID string) (time.Duration, error) {
	p := b.fault.Load()
	if p == nil {
		return 0, nil
	}
	if p.FailPowerOnOS[osID] {
		return p.StallBoot, fmt.Errorf("%w: power-on of %s", ErrInjectedFault, osID)
	}
	if p.FailAfterBoots > 0 && int(b.boots.Load()) >= p.FailAfterBoots {
		return p.StallBoot, fmt.Errorf("%w: boot budget %d exhausted", ErrInjectedFault, p.FailAfterBoots)
	}
	return p.StallBoot, nil
}

// NewBuilder validates the configuration.
func NewBuilder(cfg BuilderConfig) (*Builder, error) {
	switch {
	case cfg.Net == nil:
		return nil, fmt.Errorf("deploy: nil network")
	case cfg.App == nil:
		return nil, fmt.Errorf("deploy: nil app factory")
	case len(cfg.ControllerKey) != ed25519.PublicKeySize:
		return nil, fmt.Errorf("deploy: missing controller key")
	}
	return &Builder{
		cfg:  cfg,
		keys: make(map[transport.NodeID]ed25519.PrivateKey),
		pubs: make(map[transport.NodeID]ed25519.PublicKey),
	}, nil
}

// PublicKey returns (minting if necessary) the signing identity of a
// node. Identities are per-node, so a rebuilt node keeps its key and the
// membership can re-admit it.
func (b *Builder) PublicKey(node transport.NodeID) (ed25519.PublicKey, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.publicKeyLocked(node)
}

func (b *Builder) publicKeyLocked(node transport.NodeID) (ed25519.PublicKey, error) {
	if pub, ok := b.pubs[node]; ok {
		return pub, nil
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("deploy: minting key for node %d: %w", node, err)
	}
	b.pubs[node], b.keys[node] = pub, priv
	return pub, nil
}

// PrivateKey returns (minting if necessary) the signing key of a node.
// The chaos harness uses it to arm Byzantine attacker replicas with
// their own credentials: a compromised replica signs its forged traffic
// with its real key, so nothing it emits is detectable by signature
// checking alone.
func (b *Builder) PrivateKey(node transport.NodeID) (ed25519.PrivateKey, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.publicKeyLocked(node); err != nil {
		return nil, err
	}
	return b.keys[node], nil
}

// Node is one execution-plane machine: an LTU-drivable slot that can host
// one replica at a time.
type Node struct {
	id      transport.NodeID
	builder *Builder

	mu         sync.Mutex
	membership func() *bft.Membership // current-membership source for joins
	os         catalog.OS
	replica    *bft.Replica
	bootedAt   time.Time
	retired    bool
}

// NewNode allocates a node slot. membershipFn supplies the membership a
// freshly booted replica should bootstrap against (the controller's
// current view of the group).
func (b *Builder) NewNode(id transport.NodeID, membershipFn func() *bft.Membership) (*Node, error) {
	if membershipFn == nil {
		return nil, fmt.Errorf("deploy: nil membership source")
	}
	if _, err := b.PublicKey(id); err != nil {
		return nil, err
	}
	return &Node{id: id, builder: b, membership: membershipFn}, nil
}

// ID returns the node id.
func (n *Node) ID() transport.NodeID { return n.id }

// Running reports whether a replica is active on the node.
func (n *Node) Running() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica != nil
}

// OS returns the OS image of the running replica (zero OS when off).
func (n *Node) OS() catalog.OS {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.os
}

// Replica returns the running replica handle (nil when off).
func (n *Node) Replica() *bft.Replica {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica
}

// PowerOn implements ltu.Driver: provision the OS image and start the
// replica. Boot latency follows the image profile scaled by BootScale.
// Injected faults (FaultPolicy) and retirement are surfaced as errors so
// the controller's swap engine can retry or compensate.
func (n *Node) PowerOn(osID string, joining bool) error {
	os, err := catalog.ByID(osID)
	if err != nil {
		return err
	}
	if os.VM == nil {
		return fmt.Errorf("deploy: %s has no VM image", osID)
	}
	n.mu.Lock()
	if n.retired {
		n.mu.Unlock()
		return fmt.Errorf("%w: node %d", ErrRetired, n.id)
	}
	if n.replica != nil {
		n.mu.Unlock()
		return fmt.Errorf("deploy: node %d already running %s", n.id, n.os.ID)
	}
	n.mu.Unlock()

	stall, injected := n.builder.powerOnFault(osID)
	if stall > 0 {
		time.Sleep(stall)
	}
	if injected != nil {
		return injected
	}
	if n.builder.cfg.BootScale > 0 {
		time.Sleep(time.Duration(float64(os.VM.BootTime) * n.builder.cfg.BootScale))
	}

	n.builder.mu.Lock()
	if _, err := n.builder.publicKeyLocked(n.id); err != nil {
		n.builder.mu.Unlock()
		return err
	}
	key := n.builder.keys[n.id]
	n.builder.mu.Unlock()

	cfg := bft.ReplicaConfig{
		ID:            n.id,
		Key:           key,
		Membership:    n.membership(),
		App:           n.builder.cfg.App(),
		Net:           n.builder.cfg.Net,
		ClientKeys:    n.builder.cfg.ClientKeys,
		ControllerKey: n.builder.cfg.ControllerKey,
		Joining:       joining,
	}
	if n.builder.cfg.ReplicaTuning != nil {
		n.builder.cfg.ReplicaTuning(&cfg)
	}
	replica, err := bft.NewReplica(cfg)
	if err != nil {
		return fmt.Errorf("deploy: node %d: %w", n.id, err)
	}

	n.mu.Lock()
	// Re-check under the lock: a stalled boot may have raced a Retire or
	// a concurrent PowerOn, and a retired slot must never come back up.
	if n.retired || n.replica != nil {
		retired := n.retired
		n.mu.Unlock()
		if retired {
			return fmt.Errorf("%w: node %d", ErrRetired, n.id)
		}
		return fmt.Errorf("deploy: node %d already running", n.id)
	}
	replica.Start()
	n.os = os
	n.replica = replica
	n.bootedAt = time.Now()
	n.mu.Unlock()
	n.builder.boots.Add(1)
	return nil
}

// PowerOff implements ltu.Driver: stop and wipe the replica. Powering off
// an idle node is a no-op (the command is idempotent). A FailPowerOff
// fault leaves the replica running and returns an error, like a
// hypervisor that ignored the kill.
func (n *Node) PowerOff() error {
	if p := n.builder.fault.Load(); p != nil && p.FailPowerOff {
		n.mu.Lock()
		running := n.replica != nil
		n.mu.Unlock()
		if running {
			return fmt.Errorf("%w: power-off of node %d", ErrInjectedFault, n.id)
		}
	}
	n.mu.Lock()
	replica := n.replica
	n.replica = nil
	n.os = catalog.OS{}
	n.mu.Unlock()
	if replica != nil {
		replica.Stop()
	}
	return nil
}

// Retire is the controller's last-resort decommission: the machine is
// wiped out-of-band, so it bypasses the LTU/driver path (and any injected
// fault), stops whatever is running, and guarantees no in-flight or
// future PowerOn can ever bring the slot back.
func (n *Node) Retire() {
	n.mu.Lock()
	n.retired = true
	replica := n.replica
	n.replica = nil
	n.os = catalog.OS{}
	n.mu.Unlock()
	if replica != nil {
		replica.Stop()
	}
}

// Retired reports whether the node has been decommissioned.
func (n *Node) Retired() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.retired
}
