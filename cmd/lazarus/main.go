// Command lazarus runs the full Lazarus control plane over an in-process
// execution plane: it ingests the historical vulnerability dataset (or a
// live feed directory served over HTTP), bootstraps a BFT key-value store
// on the lowest-risk diverse replica set, and then runs daily monitoring
// rounds, printing every reconfiguration decision as simulated time
// advances through the study window.
//
//	lazarus -from 2018-01-01 -days 90 -seed 7
//	lazarus -nvd http://localhost:8080  (crawl feedgen output instead)
package main

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/controlplane"
	"lazarus/internal/feeds"
	"lazarus/internal/osint"
	"lazarus/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lazarus:", err)
		os.Exit(1)
	}
}

func run() error {
	from := flag.String("from", "2018-01-01", "simulation start date (YYYY-MM-DD)")
	days := flag.Int("days", 60, "number of daily monitoring rounds")
	seed := flag.Int64("seed", 7, "controller seed")
	nvdBase := flag.String("nvd", "", "base URL of a feedgen-served OSINT mirror (empty = bundled dataset)")
	verbose := flag.Bool("v", false, "verbose controller logging")
	flag.Parse()

	now, err := time.Parse(time.DateOnly, *from)
	if err != nil {
		return fmt.Errorf("parsing -from: %w", err)
	}
	clock := func() time.Time { return now }

	cfg := controlplane.Config{
		N:         4,
		Seed:      *seed,
		Clock:     clock,
		LTUSecret: []byte("lazarus-demo-ltu-secret"),
		ReplicaTuning: func(rc *bft.ReplicaConfig) {
			rc.CheckpointInterval = 64
			rc.ViewChangeTimeout = 300 * time.Millisecond
		},
		App: func() bft.Application { return kvs.New() },
		Net: transport.NewMemory(transport.MemoryConfig{Seed: *seed}),
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf("  | "+format+"\n", args...)
		}
	}

	// Knowledge source: live crawl of a feed mirror, or the bundled
	// synthetic dataset.
	var ds *feeds.Dataset
	if *nvdBase != "" {
		var urls []string
		for y := 2014; y <= 2018; y++ {
			urls = append(urls, fmt.Sprintf("%s/nvdcve-1.1-%d.json", *nvdBase, y))
		}
		crawler, err := osint.NewCrawler(osint.CrawlerConfig{
			NVDFeedURLs: urls,
			Sources: []osint.FeedSpec{
				{URL: *nvdBase + "/files_exploits.csv", Parser: osint.ExploitDBParser{}},
				{URL: *nvdBase + "/cvedetails.html", Parser: osint.CVEDetailsParser{}},
			},
		})
		if err != nil {
			return err
		}
		cfg.Crawler = crawler
	} else {
		ds, err = feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
		if err != nil {
			return err
		}
		cfg.InitialVulns = ds.PublishedBefore(now)
	}

	// Register one demo client.
	clientPub, clientPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	clientID := transport.ClientIDBase + transport.NodeID(1)
	cfg.ClientKeys = map[transport.NodeID]ed25519.PublicKey{clientID: clientPub}

	ctrl, err := controlplane.New(cfg)
	if err != nil {
		return err
	}
	defer ctrl.Stop()

	ctx := context.Background()
	if err := ctrl.Bootstrap(ctx); err != nil {
		return err
	}
	st := ctrl.Status()
	fmt.Printf("%s  bootstrapped CONFIG %v (threshold %.1f)\n",
		now.Format(time.DateOnly), st.Config, st.Threshold)

	// Exercise the service once so there is real replicated state.
	client, err := ctrl.ServiceClient(clientID, clientPriv)
	if err != nil {
		return err
	}
	defer client.Close()
	op, err := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: "genesis", Value: []byte(now.Format(time.DateOnly))})
	if err != nil {
		return err
	}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	res, err := client.Invoke(cctx, op)
	cancel()
	if err != nil {
		return err
	}
	fmt.Printf("%s  service check: PUT genesis -> %s\n", now.Format(time.DateOnly), res)

	reconfigs := 0
	for d := 0; d < *days; d++ {
		now = now.AddDate(0, 0, 1)
		if ds != nil {
			// New disclosures of the day reach the knowledge base.
			fresh := ds.PublishedIn(now.AddDate(0, 0, -1), now)
			if len(fresh) > 0 {
				if err := ctrl.RefreshIntel(ctx, fresh...); err != nil {
					return err
				}
			}
		} else if err := ctrl.RefreshIntel(ctx); err != nil {
			return err
		}
		decision, err := ctrl.MonitorRound(ctx)
		if err != nil {
			return err
		}
		if decision.Reconfigured {
			reconfigs++
			fmt.Printf("%s  RECONFIG #%d: %s out (risk %.1f), %s in (risk %.1f), trigger %s\n",
				now.Format(time.DateOnly), reconfigs,
				decision.Removed.ID, decision.RiskBefore,
				decision.Added.ID, decision.RiskAfter, decision.Trigger)
		}
	}
	st = ctrl.Status()
	fmt.Printf("\nafter %d days: %d reconfigurations\n", *days, reconfigs)
	fmt.Printf("CONFIG %v\nPOOL %v\nQUARANTINE %v\n", st.Config, st.Pool, st.Quarantine)
	return nil
}
