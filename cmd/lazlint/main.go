// Command lazlint runs the project's static-analysis suite: the
// per-function determinism/concurrency rules from PR 4 (map-iteration
// order reaching digests, global math/rand in seeded code, wall-clock
// reads in consensus paths, blocking calls under mutexes, goroutines
// without lifecycle ties, discarded signature verifications) plus the
// interprocedural protocol-invariant rules that mechanize the PR 6–9
// bug classes (auth-before-use, digest-blind-tally, epoch-guard,
// unbounded-remote-map, lock-order) and the stale-suppression audit.
// See DESIGN.md §"Invariants and lint rules".
//
// Usage:
//
//	lazlint [-json] [-out file] [-rules a,b,c] [-list-rules] [packages]
//
// Packages default to ./... and accept directory patterns relative to
// the working directory (./internal/bft, ./internal/...). -rules narrows
// the run to a comma-separated subset of the suite; -out writes the JSON
// findings to a file (the CI artifact) regardless of the console format.
// The exit code is 0 when clean, 1 when findings were reported, 2 on
// usage or load errors, so CI can gate on it directly:
//
//	go run ./cmd/lazlint ./...
//
// Findings are suppressed one line at a time with a justified directive:
//
//	//lazlint:allow wallclock(commit-latency metric, not protocol state)
//
// A directive that no longer suppresses anything is itself reported by
// the stale-directive audit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"lazarus/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lazlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	outFile := fs.String("out", "", "also write the JSON findings to this file")
	ruleSpec := fs.String("rules", "", "comma-separated rules to run (default: all)")
	listRules := fs.Bool("list-rules", false, "list the rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lazlint [-json] [-out file] [-rules a,b,c] [-list-rules] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-20s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	rules, err := lint.SelectRules(*ruleSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lazlint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lazlint: %v\n", err)
		return 2
	}
	findings := lint.RunRules(pkgs, rules)
	if findings == nil {
		findings = []lint.Finding{}
	}
	if *outFile != "" {
		data, err := json.MarshalIndent(findings, "", "  ")
		if err == nil {
			err = os.WriteFile(*outFile, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lazlint: writing %s: %v\n", *outFile, err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "lazlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		// The per-rule summary goes to stderr in both output modes so
		// the JSON on stdout stays machine-parseable.
		fmt.Fprintf(os.Stderr, "lazlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		for _, line := range ruleSummary(findings) {
			fmt.Fprintf(os.Stderr, "lazlint:   %s\n", line)
		}
		return 1
	}
	return 0
}

// ruleSummary counts findings per rule, sorted by count descending then
// name, formatted one rule per line.
func ruleSummary(findings []lint.Finding) []string {
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Rule]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = fmt.Sprintf("%4d %s", counts[name], name)
	}
	return out
}
