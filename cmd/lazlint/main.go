// Command lazlint runs the project's static-analysis suite: six rules
// enforcing the BFT determinism and concurrency invariants the compiler
// cannot check (map-iteration order reaching digests, global math/rand
// in seeded code, wall-clock reads in consensus paths, blocking calls
// under mutexes, goroutines without lifecycle ties, discarded signature
// verifications). See DESIGN.md §"Invariants and lint rules".
//
// Usage:
//
//	lazlint [-json] [packages]
//
// Packages default to ./... and accept directory patterns relative to
// the working directory (./internal/bft, ./internal/...). The exit code
// is 0 when clean, 1 when findings were reported, 2 on usage or load
// errors, so CI can gate on it directly:
//
//	go run ./cmd/lazlint ./...
//
// Findings are suppressed one line at a time with a justified directive:
//
//	//lazlint:allow wallclock(commit-latency metric, not protocol state)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lazarus/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lazlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	listRules := fs.Bool("rules", false, "list the rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lazlint [-json] [-rules] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-18s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lazlint: %v\n", err)
		return 2
	}
	findings := lint.Run(pkgs)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "lazlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "lazlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
