package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway single-package module and chdirs
// into it for the duration of the test.
func writeModule(t *testing.T, src string) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"x/x.go": src,
	}
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

// TestExitCodeOnViolation pins the CI contract: a reintroduced
// violation makes the CLI exit 1; a clean tree exits 0.
func TestExitCodeOnViolation(t *testing.T) {
	writeModule(t, `package x

import "math/rand"

func Jitter(d int64) int64 {
	return d + rand.Int63n(d/2+1)
}
`)
	if code := run([]string{"./..."}); code != 1 {
		t.Fatalf("violating module: exit %d, want 1", code)
	}
}

func TestExitCodeClean(t *testing.T) {
	writeModule(t, `package x

func Jitter(d int64) int64 {
	return d + d/4
}
`)
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("clean module: exit %d, want 0", code)
	}
}

func TestExitCodeBadPattern(t *testing.T) {
	writeModule(t, `package x

func F() {}
`)
	if code := run([]string{"./nosuchdir"}); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
}
