package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module and chdirs
// into it for the duration of the test.
func writeModule(t *testing.T, src string) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"x/x.go": src,
	}
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

// TestExitCodeOnViolation pins the CI contract: a reintroduced
// violation makes the CLI exit 1; a clean tree exits 0.
func TestExitCodeOnViolation(t *testing.T) {
	writeModule(t, `package x

import "math/rand"

func Jitter(d int64) int64 {
	return d + rand.Int63n(d/2+1)
}
`)
	if code := run([]string{"./..."}); code != 1 {
		t.Fatalf("violating module: exit %d, want 1", code)
	}
}

func TestExitCodeClean(t *testing.T) {
	writeModule(t, `package x

func Jitter(d int64) int64 {
	return d + d/4
}
`)
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("clean module: exit %d, want 0", code)
	}
}

func TestExitCodeBadPattern(t *testing.T) {
	writeModule(t, `package x

func F() {}
`)
	if code := run([]string{"./nosuchdir"}); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
}

const violatingSrc = `package x

import "math/rand"

func Jitter(d int64) int64 {
	return d + rand.Int63n(d/2+1)
}
`

// TestJSONExitCodeOnViolation pins the other half of the CI contract:
// the -json path must exit 1 on findings exactly like the human path
// (CI runs -json to produce the artifact AND gates on the exit code).
func TestJSONExitCodeOnViolation(t *testing.T) {
	writeModule(t, violatingSrc)
	if code := run([]string{"-json", "./..."}); code != 1 {
		t.Fatalf("violating module with -json: exit %d, want 1", code)
	}
}

// TestRuleSelection: narrowing -rules to one unrelated rule must make
// the violating module pass; naming the matching rule must fail it; an
// unknown rule name is a usage error.
func TestRuleSelection(t *testing.T) {
	writeModule(t, violatingSrc)
	if code := run([]string{"-rules", "wallclock", "./..."}); code != 0 {
		t.Fatalf("-rules wallclock on globalrand violation: exit %d, want 0", code)
	}
	if code := run([]string{"-rules", "globalrand", "./..."}); code != 1 {
		t.Fatalf("-rules globalrand: exit %d, want 1", code)
	}
	if code := run([]string{"-rules", "nosuchrule", "./..."}); code != 2 {
		t.Fatalf("-rules nosuchrule: exit %d, want 2", code)
	}
}

// TestOutArtifact: -out must write the findings JSON irrespective of the
// console format.
func TestOutArtifact(t *testing.T) {
	writeModule(t, violatingSrc)
	if code := run([]string{"-out", "findings.json", "./..."}); code != 1 {
		t.Fatalf("violating module with -out: exit %d, want 1", code)
	}
	data, err := os.ReadFile("findings.json")
	if err != nil {
		t.Fatal(err)
	}
	var findings []map[string]any
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("artifact is not a JSON findings array: %v", err)
	}
	if len(findings) == 0 || findings[0]["rule"] != "globalrand" {
		t.Fatalf("artifact findings = %v, want a globalrand finding", findings)
	}
}

// TestRuleSummary checks the per-rule count lines on stderr.
func TestRuleSummary(t *testing.T) {
	writeModule(t, violatingSrc+`
func MoreJitter(d int64) int64 {
	return Jitter(d) + rand.Int63n(3)
}
`)
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	code := run([]string{"./..."})
	w.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(string(out), "2 globalrand") {
		t.Fatalf("stderr summary missing per-rule count:\n%s", out)
	}
}
