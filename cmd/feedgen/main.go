// Command feedgen materializes the synthetic historical vulnerability
// dataset as OSINT source documents — NVD JSON feeds (one per year), an
// ExploitDB CSV index, and per-vendor advisory pages — in exactly the
// formats the Lazarus crawler parses. Useful for serving a local "OSINT
// internet" to a live controller:
//
//	feedgen -dir ./feeds -seed 1
//	cd feeds && python3 -m http.server 8080
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lazarus/internal/feeds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "feedgen:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "feeds", "output directory")
	seed := flag.Int64("seed", 1, "generator seed")
	start := flag.String("start", "2014-01-01", "window start (YYYY-MM-DD)")
	end := flag.String("end", "2018-08-31", "window end (YYYY-MM-DD)")
	scale := flag.Float64("scale", 1, "background rate multiplier")
	flag.Parse()

	startT, err := time.Parse(time.DateOnly, *start)
	if err != nil {
		return fmt.Errorf("parsing -start: %w", err)
	}
	endT, err := time.Parse(time.DateOnly, *end)
	if err != nil {
		return fmt.Errorf("parsing -end: %w", err)
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{
		Seed:  *seed,
		Start: startT,
		End:   endT,
		Scale: *scale,
	})
	if err != nil {
		return err
	}
	files, err := ds.WriteFixtures(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d vulnerability records (%s .. %s, seed %d)\n",
		ds.Len(), *start, *end, *seed)
	for _, f := range files {
		fmt.Println(" ", f)
	}
	return nil
}
