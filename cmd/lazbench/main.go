// Command lazbench regenerates every table and figure of the paper's
// evaluation (§6 and §7) from this repository's implementation:
//
//	lazbench table1          clustered Table 1 XSS trio
//	lazbench fig2            score modifiers by vulnerability state
//	lazbench fig3            score evolution of the three example CVEs
//	lazbench fig5 [-runs N]  compromised runs per month, five strategies
//	lazbench fig6 [-runs N]  compromised runs under the 2017 attacks
//	lazbench table2          the 17 deployable OS versions and VM profiles
//	lazbench fig7            homogeneous-configuration throughput
//	lazbench fig8            diverse-configuration throughput
//	lazbench fig9            throughput during a live reconfiguration
//	lazbench fig10           application throughput (KVS, SieveQ, Fabric)
//	lazbench ablation        risk-metric ablations + threshold sweep
//	lazbench leader          leader-placement analysis (paper §9)
//	lazbench net             real-transport micro-run + frame/drop counters
//	lazbench chaos [-rounds N] [-metrics-out F] [-controller-faults] [-byz-faults] [-wal F] [-wan P]
//	                         control-plane chaos run: swaps under faults;
//	                         -controller-faults also kills and WAL-recovers the
//	                         controller mid-swap (-wal backs it with a file WAL);
//	                         -byz-faults turns f members into attacker replicas
//	                         (equivocation, replay, corrupted state, censoring
//	                         primary) and asserts safety and liveness throughout;
//	                         -wan runs the whole thing under a netem profile
//	                         (lan|wan|flaky|geo3) with scheduled partition episodes
//	                         that must each end in a post-heal commit
//	lazbench perf [-out F] [-sweep] [-baseline F] [-wan P1,P2]
//	                         live-cluster throughput, commit-latency and swap-stage
//	                         quantiles (baseline JSON written to -out, default
//	                         BENCH_pr9.json); -sweep adds a batch-size × pipeline-depth
//	                         grid, -wan adds a static-vs-adaptive progress-timeout
//	                         comparison per named netem profile, -baseline fails the
//	                         run if ops/s regresses more than 30% below a checked-in
//	                         baseline artifact measured at the same configuration
//	lazbench metrics         instrumented micro-run; prints the registry snapshot as JSON
//	lazbench all             everything above (except ablations, chaos, perf and metrics)
//
// Absolute performance numbers come from the calibrated model
// (internal/perfmodel); risk numbers from the seeded synthetic dataset
// (internal/feeds). EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lazbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lazbench", flag.ContinueOnError)
	runs := fs.Int("runs", 250, "runs per strategy for fig5/fig6 (paper: 1000)")
	seed := fs.Int64("seed", 1, "dataset and experiment seed")
	rounds := fs.Int("rounds", 25, "monitor rounds for the chaos run")
	ctrlFaults := fs.Bool("controller-faults", false, "chaos: kill and WAL-recover the controller mid-swap")
	byzFaults := fs.Bool("byz-faults", false, "chaos: turn f members into Byzantine attacker replicas per round")
	walPath := fs.String("wal", "", "chaos: back the control plane with a file WAL at this path")
	wan := fs.String("wan", "", "netem profile: chaos takes one name, perf a comma-separated list (lan|wan|flaky|geo3)")
	metricsOut := fs.String("metrics-out", "", "write the perf/chaos metrics baseline JSON to this file")
	out := fs.String("out", "BENCH_pr9.json", "perf baseline artifact path (-metrics-out overrides)")
	sweep := fs.Bool("sweep", false, "perf: also sweep batch size × pipeline depth")
	baseline := fs.String("baseline", "", "perf: fail if ops/s drops >30% below this baseline JSON")
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing subcommand (table1|fig2|fig3|fig5|fig6|table2|fig7|fig8|fig9|fig10|ablation|leader|net|chaos|perf|metrics|all)")
	}
	sub := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cmds := map[string]func(int, int64) error{
		"table1":   func(int, int64) error { return table1() },
		"fig2":     func(int, int64) error { return fig2() },
		"fig3":     func(int, int64) error { return fig3() },
		"fig5":     func(r int, s int64) error { return fig5(r, s) },
		"fig6":     func(r int, s int64) error { return fig6(r, s) },
		"table2":   func(int, int64) error { return table2() },
		"fig7":     func(int, int64) error { return fig7() },
		"fig8":     func(int, int64) error { return fig8() },
		"fig9":     func(int, int64) error { return fig9() },
		"fig10":    func(int, int64) error { return fig10() },
		"ablation": func(r int, s int64) error { return ablation(r, s) },
		"leader":   func(int, int64) error { return leaderPlacement() },
		"net":      func(int, int64) error { return netStats() },
		"chaos": func(_ int, s int64) error {
			return chaosRun(*rounds, s, *metricsOut, *ctrlFaults, *byzFaults, *walPath, *wan)
		},
		"perf": func(_ int, s int64) error {
			path := *out
			if *metricsOut != "" {
				path = *metricsOut
			}
			return perfCmd(s, path, *sweep, *baseline, *wan)
		},
		"metrics": func(_ int, s int64) error { return metricsCmd(s) },
	}
	if sub == "all" {
		for _, name := range []string{"table1", "fig2", "fig3", "table2", "fig7", "fig8", "fig9", "fig10", "net", "fig5", "fig6"} {
			if err := cmds[name](*runs, *seed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	cmd, ok := cmds[sub]
	if !ok {
		return fmt.Errorf("unknown subcommand %q", sub)
	}
	return cmd(*runs, *seed)
}
