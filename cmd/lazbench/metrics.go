package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/controlplane"
	"lazarus/internal/metrics"
	"lazarus/internal/netem"
	"lazarus/internal/transport"
)

// benchSummary is the machine-readable baseline `lazbench perf` writes
// (BENCH_pr8.json): throughput and commit-latency quantiles from a live
// cluster under closed-loop load, the batch-size × pipeline-depth sweep
// (when run with -sweep), swap-stage duration quantiles from a
// fault-free control-plane run, and the full registry snapshot for
// everything else.
type benchSummary struct {
	Tool        string  `json:"tool"`
	Seed        int64   `json:"seed"`
	LoadSeconds float64 `json:"load_seconds"`
	Workers     int     `json:"workers"`
	// BatchSize and PipelineDepth pin the main load phase's replica
	// configuration (0 = replica default). Baseline comparisons are only
	// meaningful between runs measured at the same (batch, depth,
	// workers) shape — checkBaseline refuses to compare across shapes.
	BatchSize       int                                  `json:"batch_size"`
	PipelineDepth   int                                  `json:"pipeline_depth"`
	Ops             uint64                               `json:"ops"`
	OpErrors        uint64                               `json:"op_errors"`
	OpsPerSec       float64                              `json:"ops_per_sec"`
	CommitLatencyUS metrics.HistogramSnapshot            `json:"commit_latency_us"`
	Sweep           []sweepPoint                         `json:"sweep,omitempty"`
	WAN             []wanPoint                           `json:"wan,omitempty"`
	SwapStagesUS    map[string]metrics.HistogramSnapshot `json:"swap_stages_us"`
	SwapTotalUS     metrics.HistogramSnapshot            `json:"swap_total_us"`
	SwapOutcomes    map[string]int64                     `json:"swap_outcomes"`
	TraceEvents     int                                  `json:"trace_events"`
	TraceDropped    int64                                `json:"trace_dropped"`
	Registry        metrics.Snapshot                     `json:"registry"`
}

// sweepPoint is one cell of the batch-size × pipeline-depth grid.
type sweepPoint struct {
	BatchSize     int     `json:"batch_size"`
	PipelineDepth int     `json:"pipeline_depth"`
	Workers       int     `json:"workers"`
	Ops           uint64  `json:"ops"`
	OpErrors      uint64  `json:"op_errors"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P50US         int64   `json:"p50_us"`
	P95US         int64   `json:"p95_us"`
}

// wanPoint is one cell of the netem-profile × timeout-mode grid: the
// same load run under the named WAN conditions with static vs adaptive
// progress timeouts. Adaptive must strictly reduce view changes — a
// static timer tuned for the in-memory fabric fires spuriously at WAN
// latency, and every spurious firing stalls the pipeline for a view
// change.
type wanPoint struct {
	Profile          string  `json:"profile"`
	Adaptive         bool    `json:"adaptive"`
	Workers          int     `json:"workers"`
	Ops              uint64  `json:"ops"`
	OpErrors         uint64  `json:"op_errors"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	P50US            int64   `json:"p50_us"`
	P95US            int64   `json:"p95_us"`
	ViewChanges      int64   `json:"view_changes"`
	ProgressTimeouts int64   `json:"progress_timeouts"`
	TimeoutBackoffs  int64   `json:"timeout_backoffs"`
}

// loadOpts tunes one closed-loop load run.
type loadOpts struct {
	workers       int
	dur           time.Duration
	batchSize     int // 0 = replica default
	pipelineDepth int // 0 = replica default
	// wanProfile, when non-empty, wraps the cluster network in the named
	// netem profile, seeded with seed; adaptive and viewChangeTimeout
	// then pick the replicas' progress-timeout mode.
	wanProfile        string
	seed              int64
	adaptive          bool
	viewChangeTimeout time.Duration
}

// loadPhase runs a 4-replica in-process cluster with closed-loop KVS
// clients reporting into reg/tr, and returns (ops, errors).
func loadPhase(ctx context.Context, reg *metrics.Registry, tr *metrics.Tracer, lo loadOpts) (uint64, uint64, error) {
	workers, dur := lo.workers, lo.dur
	opts := bfttest.Options{
		Clients:           workers,
		BatchDelay:        time.Millisecond,
		BatchSize:         lo.batchSize,
		PipelineDepth:     lo.pipelineDepth,
		ViewChangeTimeout: lo.viewChangeTimeout,
		AdaptiveTimeout:   lo.adaptive,
		Metrics:           reg,
		Trace:             tr,
	}
	if lo.wanProfile != "" {
		prof, err := netem.ByName(lo.wanProfile)
		if err != nil {
			return 0, 0, err
		}
		opts.NetWrap = func(m *transport.Memory) transport.Network {
			return netem.Wrap(m, netem.Config{Profile: prof, Seed: lo.seed, Metrics: reg})
		}
	}
	c, err := bfttest.Launch(func(transport.NodeID) bft.Application { return kvs.New() }, opts)
	if err != nil {
		return 0, 0, err
	}
	defer c.Stop()

	var ops, opErrs atomic.Uint64
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	for w := 0; w < workers; w++ {
		cl, err := c.Client(w)
		if err != nil {
			return 0, 0, err
		}
		wg.Add(1)
		go func(w int, cl *bft.Client) {
			defer wg.Done()
			defer cl.Close()
			for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("w%d-k%d", w, i%64), Value: []byte{byte(i)}})
				ictx, cancel := context.WithTimeout(ctx, 2*time.Second)
				_, err := cl.Invoke(ictx, op)
				cancel()
				if err != nil {
					opErrs.Add(1)
					continue
				}
				ops.Add(1)
			}
		}(w, cl)
	}
	wg.Wait()
	return ops.Load(), opErrs.Load(), nil
}

// swapPhase runs a short fault-free control-plane loop with a CVE bomb
// every round, so several clean swaps populate the per-stage duration
// histograms (negative probabilities disable the chaos faults).
func swapPhase(ctx context.Context, reg *metrics.Registry, tr *metrics.Tracer, seed int64, rounds int) error {
	_, err := controlplane.RunChaos(ctx, controlplane.ChaosConfig{
		Rounds:        rounds,
		Seed:          seed,
		ClientWorkers: 0,
		BootFailProb:  -1,
		BootStallProb: -1,
		LTUFailProb:   -1,
		SilentProb:    -1,
		LinkLossProb:  -1,
		BombProb:      1.0,
		Metrics:       reg,
		Trace:         tr,
	})
	return err
}

// summarize extracts the headline numbers from the registry snapshot.
func summarize(reg *metrics.Registry, tr *metrics.Tracer, seed int64, dur time.Duration, workers int, ops, opErrs uint64) *benchSummary {
	snap := reg.Snapshot()
	sum := &benchSummary{
		Tool:            "lazbench perf",
		Seed:            seed,
		LoadSeconds:     dur.Seconds(),
		Workers:         workers,
		Ops:             ops,
		OpErrors:        opErrs,
		OpsPerSec:       float64(ops) / dur.Seconds(),
		CommitLatencyUS: snap.Histograms["bft.commit_latency_us"],
		SwapStagesUS:    map[string]metrics.HistogramSnapshot{},
		SwapTotalUS:     snap.Histograms["controlplane.swap_total_us"],
		SwapOutcomes:    map[string]int64{},
		TraceEvents:     len(tr.Events()),
		TraceDropped:    tr.Dropped(),
		Registry:        snap,
	}
	for name, h := range snap.Histograms {
		if stage, ok := strings.CutPrefix(name, "controlplane.swap_stage_us."); ok {
			sum.SwapStagesUS[stage] = h
		}
	}
	for name, n := range snap.Counters {
		if outcome, ok := strings.CutPrefix(name, "controlplane.swap_outcome."); ok {
			sum.SwapOutcomes[outcome] = n
		}
	}
	return sum
}

func writeBenchFile(path string, sum *benchSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sweepGrid measures ops/s and commit latency across batch size ×
// pipeline depth, one fresh cluster and registry per cell so the
// histograms do not bleed between cells.
func sweepGrid(ctx context.Context, seed int64) ([]sweepPoint, error) {
	const (
		workers = 8
		cellDur = 1500 * time.Millisecond
	)
	var points []sweepPoint
	fmt.Printf("-- sweep: batch size x pipeline depth, %d closed-loop clients, %v per cell --\n", workers, cellDur)
	fmt.Printf("%8s %9s %10s %9s %9s\n", "batch", "depth", "ops/sec", "p50(us)", "p95(us)")
	for _, batch := range []int{1, 8, 16} {
		for _, depth := range []int{1, 4, 8} {
			reg := metrics.NewRegistry()
			tr := metrics.NewTracer(4096)
			ops, opErrs, err := loadPhase(ctx, reg, tr, loadOpts{
				workers: workers, dur: cellDur, batchSize: batch, pipelineDepth: depth,
			})
			if err != nil {
				return nil, fmt.Errorf("sweep batch=%d depth=%d: %w", batch, depth, err)
			}
			lat := reg.Snapshot().Histograms["bft.commit_latency_us"]
			pt := sweepPoint{
				BatchSize: batch, PipelineDepth: depth, Workers: workers,
				Ops: ops, OpErrors: opErrs,
				OpsPerSec: float64(ops) / cellDur.Seconds(),
				P50US:     lat.P50, P95US: lat.P95,
			}
			points = append(points, pt)
			fmt.Printf("%8d %9d %10.0f %9d %9d\n", batch, depth, pt.OpsPerSec, pt.P50US, pt.P95US)
		}
	}
	return points, nil
}

// wanGrid measures the same closed-loop load under each named netem
// profile twice — static progress timeouts, then adaptive — with an
// aggressive base ViewChangeTimeout so the static timer provably fires
// under WAN latency. One fresh cluster and registry per cell.
func wanGrid(ctx context.Context, seed int64, profiles []string) ([]wanPoint, error) {
	const (
		workers = 4
		cellDur = 2500 * time.Millisecond
		// Aggressive for a WAN on purpose: below the ~40ms propose→execute
		// chain at continental RTTs, so a static progress timer misfires
		// on ordinary pipelined load. The adaptive controller starts from
		// the same base and must learn its way out.
		baseTimeout = 30 * time.Millisecond
	)
	var points []wanPoint
	fmt.Printf("-- wan: profile x timeout mode, %d closed-loop clients, %v per cell, %v base timeout --\n",
		workers, cellDur, baseTimeout)
	fmt.Printf("%8s %9s %10s %9s %9s %8s %9s %9s\n",
		"profile", "timeouts", "ops/sec", "p50(us)", "p95(us)", "vchanges", "ptimeouts", "backoffs")
	for _, name := range profiles {
		for _, adaptive := range []bool{false, true} {
			reg := metrics.NewRegistry()
			tr := metrics.NewTracer(4096)
			ops, opErrs, err := loadPhase(ctx, reg, tr, loadOpts{
				workers: workers, dur: cellDur,
				wanProfile: name, seed: seed,
				adaptive: adaptive, viewChangeTimeout: baseTimeout,
			})
			if err != nil {
				return nil, fmt.Errorf("wan %s adaptive=%v: %w", name, adaptive, err)
			}
			snap := reg.Snapshot()
			lat := snap.Histograms["bft.commit_latency_us"]
			pt := wanPoint{
				Profile: name, Adaptive: adaptive, Workers: workers,
				Ops: ops, OpErrors: opErrs,
				OpsPerSec: float64(ops) / cellDur.Seconds(),
				P50US:     lat.P50, P95US: lat.P95,
				ViewChanges:      snap.Counters["bft.view_changes"],
				ProgressTimeouts: snap.Counters["bft.progress_timeouts"],
				TimeoutBackoffs:  snap.Counters["bft.timeout_backoffs"],
			}
			points = append(points, pt)
			mode := "static"
			if adaptive {
				mode = "adaptive"
			}
			fmt.Printf("%8s %9s %10.0f %9d %9d %8d %9d %9d\n",
				name, mode, pt.OpsPerSec, pt.P50US, pt.P95US,
				pt.ViewChanges, pt.ProgressTimeouts, pt.TimeoutBackoffs)
		}
	}
	return points, nil
}

// checkBaseline compares the measured throughput against a checked-in
// baseline artifact and fails on a >30% regression — noisy CI runners
// get headroom, a real fast-path regression does not. The comparison is
// pinned to matching configurations: ops/s measured at different
// (batch, depth, workers) shapes are different experiments, and
// comparing them produces phantom regressions (that is exactly how the
// PR6→PR8 baseline "drop" read as a 2× loss — see DESIGN.md §11). When
// the main phases differ in shape, the baseline's sweep grid is
// searched for a cell matching the current shape; if none exists the
// check is skipped with instructions to regenerate.
func checkBaseline(path string, cur *benchSummary) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchSummary
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	shape := func(batch, depth, workers int) string {
		return fmt.Sprintf("batch=%d depth=%d workers=%d", batch, depth, workers)
	}
	curShape := shape(cur.BatchSize, cur.PipelineDepth, cur.Workers)
	baseShape := shape(base.BatchSize, base.PipelineDepth, base.Workers)
	baseOps := base.OpsPerSec
	against := fmt.Sprintf("%s main phase (%s)", path, baseShape)
	if baseShape != curShape {
		fmt.Printf("baseline config delta: current %s vs %s %s\n", curShape, path, baseShape)
		found := false
		for _, pt := range base.Sweep {
			if pt.BatchSize == cur.BatchSize && pt.PipelineDepth == cur.PipelineDepth && pt.Workers == cur.Workers {
				baseOps, found = pt.OpsPerSec, true
				against = fmt.Sprintf("%s sweep cell (%s)", path, curShape)
				break
			}
		}
		if !found {
			fmt.Printf("baseline check  skipped: %s has no measurement at %s; regenerate it with `lazbench perf -sweep -out %s`\n",
				path, curShape, path)
			return nil
		}
	}
	floor := 0.7 * baseOps
	if cur.OpsPerSec < floor {
		return fmt.Errorf("throughput regression: %.0f ops/s is below 70%% of %s (%.0f ops/s)",
			cur.OpsPerSec, against, baseOps)
	}
	fmt.Printf("baseline check  %.0f ops/s >= %.0f (70%% of %s %.0f)\n",
		cur.OpsPerSec, floor, against, baseOps)
	return nil
}

// perfCmd measures the live stack: closed-loop KVS throughput and
// commit-latency quantiles on a real cluster, optionally the batch ×
// pipeline sweep and the WAN static-vs-adaptive timeout grid, then
// swap-stage timings from a fault-free control-plane loop. The
// machine-readable baseline goes to metricsOut (BENCH_pr9.json schema;
// see DESIGN.md).
func perfCmd(seed int64, metricsOut string, sweep bool, baselinePath, wanProfiles string) error {
	const (
		workers = 3
		loadDur = 3 * time.Second
		rounds  = 4
	)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(16384)

	fmt.Printf("== perf: %d closed-loop clients for %v, then %d swap rounds (seed %d) ==\n",
		workers, loadDur, rounds, seed)
	ops, opErrs, err := loadPhase(ctx, reg, tr, loadOpts{workers: workers, dur: loadDur})
	if err != nil {
		return err
	}
	var sweepPoints []sweepPoint
	if sweep {
		if sweepPoints, err = sweepGrid(ctx, seed); err != nil {
			return err
		}
	}
	var wanPoints []wanPoint
	if wanProfiles != "" {
		if wanPoints, err = wanGrid(ctx, seed, strings.Split(wanProfiles, ",")); err != nil {
			return err
		}
	}
	if err := swapPhase(ctx, reg, tr, seed, rounds); err != nil {
		return err
	}

	sum := summarize(reg, tr, seed, loadDur, workers, ops, opErrs)
	sum.Sweep = sweepPoints
	sum.WAN = wanPoints
	lat := sum.CommitLatencyUS
	fmt.Printf("throughput      %.0f ops/sec (%d ops, %d errors)\n", sum.OpsPerSec, sum.Ops, sum.OpErrors)
	fmt.Printf("commit latency  p50 %dus  p95 %dus  p99 %dus  (n=%d, mean %.0fus)\n",
		lat.P50, lat.P95, lat.P99, lat.Count, lat.Mean)
	for stage, h := range sum.SwapStagesUS {
		fmt.Printf("swap stage %-10s p50 %8dus  p95 %8dus  (n=%d)\n", stage, h.P50, h.P95, h.Count)
	}
	fmt.Printf("swap outcomes   %v\n", sum.SwapOutcomes)
	fmt.Printf("trace           %d events retained (%d dropped)\n", sum.TraceEvents, sum.TraceDropped)
	if metricsOut != "" {
		if err := writeBenchFile(metricsOut, sum); err != nil {
			return err
		}
		fmt.Printf("baseline        written to %s\n", metricsOut)
	}
	if baselinePath != "" {
		if err := checkBaseline(baselinePath, sum); err != nil {
			return err
		}
	}
	return nil
}

// metricsCmd runs the same instrumented pipeline as perf and prints the
// raw registry snapshot as JSON on stdout (the same snapshot perf embeds
// in its -metrics-out baseline).
func metricsCmd(seed int64) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(16384)
	if _, _, err := loadPhase(ctx, reg, tr, loadOpts{workers: 2, dur: time.Second}); err != nil {
		return err
	}
	if err := swapPhase(ctx, reg, tr, seed, 2); err != nil {
		return err
	}
	return reg.Snapshot().WriteJSON(os.Stdout)
}
