package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/controlplane"
	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// benchSummary is the machine-readable baseline `lazbench perf` writes
// (BENCH_pr8.json): throughput and commit-latency quantiles from a live
// cluster under closed-loop load, the batch-size × pipeline-depth sweep
// (when run with -sweep), swap-stage duration quantiles from a
// fault-free control-plane run, and the full registry snapshot for
// everything else.
type benchSummary struct {
	Tool            string                               `json:"tool"`
	Seed            int64                                `json:"seed"`
	LoadSeconds     float64                              `json:"load_seconds"`
	Workers         int                                  `json:"workers"`
	Ops             uint64                               `json:"ops"`
	OpErrors        uint64                               `json:"op_errors"`
	OpsPerSec       float64                              `json:"ops_per_sec"`
	CommitLatencyUS metrics.HistogramSnapshot            `json:"commit_latency_us"`
	Sweep           []sweepPoint                         `json:"sweep,omitempty"`
	SwapStagesUS    map[string]metrics.HistogramSnapshot `json:"swap_stages_us"`
	SwapTotalUS     metrics.HistogramSnapshot            `json:"swap_total_us"`
	SwapOutcomes    map[string]int64                     `json:"swap_outcomes"`
	TraceEvents     int                                  `json:"trace_events"`
	TraceDropped    int64                                `json:"trace_dropped"`
	Registry        metrics.Snapshot                     `json:"registry"`
}

// sweepPoint is one cell of the batch-size × pipeline-depth grid.
type sweepPoint struct {
	BatchSize     int     `json:"batch_size"`
	PipelineDepth int     `json:"pipeline_depth"`
	Workers       int     `json:"workers"`
	Ops           uint64  `json:"ops"`
	OpErrors      uint64  `json:"op_errors"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P50US         int64   `json:"p50_us"`
	P95US         int64   `json:"p95_us"`
}

// loadOpts tunes one closed-loop load run.
type loadOpts struct {
	workers       int
	dur           time.Duration
	batchSize     int // 0 = replica default
	pipelineDepth int // 0 = replica default
}

// loadPhase runs a 4-replica in-process cluster with closed-loop KVS
// clients reporting into reg/tr, and returns (ops, errors).
func loadPhase(ctx context.Context, reg *metrics.Registry, tr *metrics.Tracer, lo loadOpts) (uint64, uint64, error) {
	workers, dur := lo.workers, lo.dur
	c, err := bfttest.Launch(func(transport.NodeID) bft.Application { return kvs.New() }, bfttest.Options{
		Clients:       workers,
		BatchDelay:    time.Millisecond,
		BatchSize:     lo.batchSize,
		PipelineDepth: lo.pipelineDepth,
		Metrics:       reg,
		Trace:         tr,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Stop()

	var ops, opErrs atomic.Uint64
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	for w := 0; w < workers; w++ {
		cl, err := c.Client(w)
		if err != nil {
			return 0, 0, err
		}
		wg.Add(1)
		go func(w int, cl *bft.Client) {
			defer wg.Done()
			defer cl.Close()
			for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("w%d-k%d", w, i%64), Value: []byte{byte(i)}})
				ictx, cancel := context.WithTimeout(ctx, 2*time.Second)
				_, err := cl.Invoke(ictx, op)
				cancel()
				if err != nil {
					opErrs.Add(1)
					continue
				}
				ops.Add(1)
			}
		}(w, cl)
	}
	wg.Wait()
	return ops.Load(), opErrs.Load(), nil
}

// swapPhase runs a short fault-free control-plane loop with a CVE bomb
// every round, so several clean swaps populate the per-stage duration
// histograms (negative probabilities disable the chaos faults).
func swapPhase(ctx context.Context, reg *metrics.Registry, tr *metrics.Tracer, seed int64, rounds int) error {
	_, err := controlplane.RunChaos(ctx, controlplane.ChaosConfig{
		Rounds:        rounds,
		Seed:          seed,
		ClientWorkers: 0,
		BootFailProb:  -1,
		BootStallProb: -1,
		LTUFailProb:   -1,
		SilentProb:    -1,
		LinkLossProb:  -1,
		BombProb:      1.0,
		Metrics:       reg,
		Trace:         tr,
	})
	return err
}

// summarize extracts the headline numbers from the registry snapshot.
func summarize(reg *metrics.Registry, tr *metrics.Tracer, seed int64, dur time.Duration, workers int, ops, opErrs uint64) *benchSummary {
	snap := reg.Snapshot()
	sum := &benchSummary{
		Tool:            "lazbench perf",
		Seed:            seed,
		LoadSeconds:     dur.Seconds(),
		Workers:         workers,
		Ops:             ops,
		OpErrors:        opErrs,
		OpsPerSec:       float64(ops) / dur.Seconds(),
		CommitLatencyUS: snap.Histograms["bft.commit_latency_us"],
		SwapStagesUS:    map[string]metrics.HistogramSnapshot{},
		SwapTotalUS:     snap.Histograms["controlplane.swap_total_us"],
		SwapOutcomes:    map[string]int64{},
		TraceEvents:     len(tr.Events()),
		TraceDropped:    tr.Dropped(),
		Registry:        snap,
	}
	for name, h := range snap.Histograms {
		if stage, ok := strings.CutPrefix(name, "controlplane.swap_stage_us."); ok {
			sum.SwapStagesUS[stage] = h
		}
	}
	for name, n := range snap.Counters {
		if outcome, ok := strings.CutPrefix(name, "controlplane.swap_outcome."); ok {
			sum.SwapOutcomes[outcome] = n
		}
	}
	return sum
}

func writeBenchFile(path string, sum *benchSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sweepGrid measures ops/s and commit latency across batch size ×
// pipeline depth, one fresh cluster and registry per cell so the
// histograms do not bleed between cells.
func sweepGrid(ctx context.Context, seed int64) ([]sweepPoint, error) {
	const (
		workers = 8
		cellDur = 1500 * time.Millisecond
	)
	var points []sweepPoint
	fmt.Printf("-- sweep: batch size x pipeline depth, %d closed-loop clients, %v per cell --\n", workers, cellDur)
	fmt.Printf("%8s %9s %10s %9s %9s\n", "batch", "depth", "ops/sec", "p50(us)", "p95(us)")
	for _, batch := range []int{1, 8, 16} {
		for _, depth := range []int{1, 4, 8} {
			reg := metrics.NewRegistry()
			tr := metrics.NewTracer(4096)
			ops, opErrs, err := loadPhase(ctx, reg, tr, loadOpts{
				workers: workers, dur: cellDur, batchSize: batch, pipelineDepth: depth,
			})
			if err != nil {
				return nil, fmt.Errorf("sweep batch=%d depth=%d: %w", batch, depth, err)
			}
			lat := reg.Snapshot().Histograms["bft.commit_latency_us"]
			pt := sweepPoint{
				BatchSize: batch, PipelineDepth: depth, Workers: workers,
				Ops: ops, OpErrors: opErrs,
				OpsPerSec: float64(ops) / cellDur.Seconds(),
				P50US:     lat.P50, P95US: lat.P95,
			}
			points = append(points, pt)
			fmt.Printf("%8d %9d %10.0f %9d %9d\n", batch, depth, pt.OpsPerSec, pt.P50US, pt.P95US)
		}
	}
	return points, nil
}

// checkBaseline compares the measured throughput against a checked-in
// baseline artifact and fails on a >30% regression — noisy CI runners
// get headroom, a real fast-path regression does not.
func checkBaseline(path string, cur *benchSummary) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchSummary
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	floor := 0.7 * base.OpsPerSec
	if cur.OpsPerSec < floor {
		return fmt.Errorf("throughput regression: %.0f ops/s is below 70%% of the %s baseline (%.0f ops/s)",
			cur.OpsPerSec, path, base.OpsPerSec)
	}
	fmt.Printf("baseline check  %.0f ops/s >= %.0f (70%% of %s's %.0f)\n",
		cur.OpsPerSec, floor, path, base.OpsPerSec)
	return nil
}

// perfCmd measures the live stack: closed-loop KVS throughput and
// commit-latency quantiles on a real cluster, optionally the batch ×
// pipeline sweep, then swap-stage timings from a fault-free
// control-plane loop. The machine-readable baseline goes to metricsOut
// (BENCH_pr8.json schema; see DESIGN.md).
func perfCmd(seed int64, metricsOut string, sweep bool, baselinePath string) error {
	const (
		workers = 3
		loadDur = 3 * time.Second
		rounds  = 4
	)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(16384)

	fmt.Printf("== perf: %d closed-loop clients for %v, then %d swap rounds (seed %d) ==\n",
		workers, loadDur, rounds, seed)
	ops, opErrs, err := loadPhase(ctx, reg, tr, loadOpts{workers: workers, dur: loadDur})
	if err != nil {
		return err
	}
	var sweepPoints []sweepPoint
	if sweep {
		if sweepPoints, err = sweepGrid(ctx, seed); err != nil {
			return err
		}
	}
	if err := swapPhase(ctx, reg, tr, seed, rounds); err != nil {
		return err
	}

	sum := summarize(reg, tr, seed, loadDur, workers, ops, opErrs)
	sum.Sweep = sweepPoints
	lat := sum.CommitLatencyUS
	fmt.Printf("throughput      %.0f ops/sec (%d ops, %d errors)\n", sum.OpsPerSec, sum.Ops, sum.OpErrors)
	fmt.Printf("commit latency  p50 %dus  p95 %dus  p99 %dus  (n=%d, mean %.0fus)\n",
		lat.P50, lat.P95, lat.P99, lat.Count, lat.Mean)
	for stage, h := range sum.SwapStagesUS {
		fmt.Printf("swap stage %-10s p50 %8dus  p95 %8dus  (n=%d)\n", stage, h.P50, h.P95, h.Count)
	}
	fmt.Printf("swap outcomes   %v\n", sum.SwapOutcomes)
	fmt.Printf("trace           %d events retained (%d dropped)\n", sum.TraceEvents, sum.TraceDropped)
	if metricsOut != "" {
		if err := writeBenchFile(metricsOut, sum); err != nil {
			return err
		}
		fmt.Printf("baseline        written to %s\n", metricsOut)
	}
	if baselinePath != "" {
		if err := checkBaseline(baselinePath, sum); err != nil {
			return err
		}
	}
	return nil
}

// metricsCmd runs the same instrumented pipeline as perf and prints the
// raw registry snapshot as JSON on stdout (the same snapshot perf embeds
// in its -metrics-out baseline).
func metricsCmd(seed int64) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(16384)
	if _, _, err := loadPhase(ctx, reg, tr, loadOpts{workers: 2, dur: time.Second}); err != nil {
		return err
	}
	if err := swapPhase(ctx, reg, tr, seed, 2); err != nil {
		return err
	}
	return reg.Snapshot().WriteJSON(os.Stdout)
}
