package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"lazarus/internal/controlplane"
	"lazarus/internal/metrics"
)

// chaosRun drives the full control plane through a seeded fault schedule
// — random boot failures, stalled boots, LTU faults, silent replicas and
// link loss, plus forced boot-failure rounds — while closed-loop clients
// hammer the replicated KVS. With controllerFaults the harness also
// kills the controller a few WAL appends into random rounds (usually
// mid-swap) and recovers a successor from the WAL, which must resolve
// the interrupted swap; walPath backs the log with a file so restart
// also exercises on-disk replay. It prints the swap-engine counters,
// the structured swap history and the transport statistics, and exits
// non-zero if any invariant was violated: the group must hold exactly
// n = 3f+1 live correct replicas and every failed swap must roll back
// cleanly. With byzFaults, rounds additionally turn f members into
// attacker replicas — equivocation, stale-vote replay, corrupted state
// snapshots, censoring primaries — and the run also asserts that no two
// replicas diverged and no forged reply was accepted. With wanProfile,
// the execution plane runs under that netem condition profile — latency,
// loss, reordering, bandwidth caps — with scheduled partition episodes
// (symmetric, asymmetric, isolating) that must each end in a post-heal
// commit; the replicas switch to adaptive progress timeouts to survive
// the conditions.
func chaosRun(rounds int, seed int64, metricsOut string, controllerFaults, byzFaults bool, walPath, wanProfile string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(16384)
	fmt.Printf("== chaos: %d monitor rounds, seed %d, controller faults %v, byzantine faults %v, wan %q ==\n",
		rounds, seed, controllerFaults, byzFaults, wanProfile)
	rep, err := controlplane.RunChaos(ctx, controlplane.ChaosConfig{
		Rounds:        rounds,
		Seed:          seed,
		ClientWorkers: 2,
		// Two forced rounds bomb a critical CVE while every image refuses
		// to boot, so the rollback path provably executes.
		ForceBootFailRounds: []int{3, rounds/2 + 1},
		ControllerFaults:    controllerFaults,
		ByzFaults:           byzFaults,
		// Force the first four eligible rounds Byzantine so even short
		// runs cycle through every attack kind.
		ForceByzRounds: []int{0, 1, 2, 3},
		WANProfile:     wanProfile,
		WALPath:        walPath,
		Metrics:        reg,
		Trace:          tr,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	st := rep.Stats
	fmt.Println()
	fmt.Printf("rounds          %d (%d with faults, %d bombs, %d round errors)\n",
		rep.Rounds, rep.FaultRounds, rep.Bombs, rep.RoundErrors)
	fmt.Printf("swaps           %d attempted: %d succeeded, %d rolled back, %d rolled forward, %d aborted (%d stage retries)\n",
		st.Attempts, st.Successes, st.Rollbacks, st.RolledForward, st.RollbackFailures, st.Retries)
	for stage, n := range st.StageFailures {
		fmt.Printf("  stage %-10v %d failed attempts\n", stage, n)
	}
	fmt.Printf("client load     %d ops (%d errors)\n", rep.ClientOps, rep.ClientErrs)
	if controllerFaults {
		fmt.Printf("controller      %d kills, %d recoveries (final generation %d), %d/%d down-probes served, %d WAL records\n",
			rep.ControllerKills, rep.Recoveries, rep.Generation,
			rep.DownProbes-rep.DownProbeErrs, rep.DownProbes, rep.WALRecords)
	}
	if byzFaults {
		fmt.Printf("byzantine       %d attack rounds, %d/%d in-attack probes served, actions %+v\n",
			rep.ByzRounds, rep.ByzProbes-rep.ByzProbeErrs, rep.ByzProbes, rep.ByzStats)
		fmt.Printf("  schedule      %v\n", rep.ByzSchedule)
	}
	if wanProfile != "" {
		fmt.Printf("wan             %d partition episodes, %d/%d post-heal probes served\n",
			rep.WANRounds, rep.WANProbes-rep.WANProbeErrs, rep.WANProbes)
		fmt.Printf("  schedule      %v\n", rep.WANSchedule)
		fmt.Printf("  netem         %+v\n", rep.Netem)
	}
	fmt.Printf("transport       %+v\n", rep.Net)
	fmt.Printf("final config    %v (epoch %d, members %v)\n",
		rep.Final.Config, rep.Final.Epoch, rep.Final.Members)
	fmt.Printf("census          %d tracked, %d running, %d orphans\n",
		rep.Census.Tracked, len(rep.Census.Running), len(rep.Census.Orphans))

	if len(rep.History) > 0 {
		fmt.Println("\nswap history:")
		for _, r := range rep.History {
			line := fmt.Sprintf("  %-22s node %2d -> %2d  %-13v", r.Removed+" -> "+r.Added,
				r.OldNode, r.NewNode, r.Outcome)
			if r.Err != "" {
				line += fmt.Sprintf("  [%v: %s]", r.FailedStage, r.Err)
			}
			fmt.Println(line)
		}
	}

	if metricsOut != "" {
		sum := summarize(reg, tr, seed, time.Second, 2, rep.ClientOps, rep.ClientErrs)
		sum.Tool = "lazbench chaos"
		sum.LoadSeconds = 0 // chaos load is fault-paced, not a timed phase
		sum.OpsPerSec = 0
		if err := writeBenchFile(metricsOut, sum); err != nil {
			return err
		}
		fmt.Printf("\nmetrics baseline written to %s\n", metricsOut)
	}

	if len(rep.Violations) > 0 {
		fmt.Println("\nINVARIANT VIOLATIONS:")
		for _, v := range rep.Violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("\nall invariants held: n=3f+1 retained, every failed swap rolled back")
	return nil
}
