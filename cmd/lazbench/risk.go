package main

import (
	"fmt"
	"time"

	"lazarus/internal/cluster"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/osint"
	"lazarus/internal/riskim"
	"lazarus/internal/strategies"
)

// table1 reproduces paper Table 1: the three OpenStack Horizon XSS CVEs
// whose near-identical descriptions NVD attributes to different OSes, and
// the cluster assignment that groups them.
func table1() error {
	fmt.Println("== Table 1: similar vulnerabilities affecting different OSes ==")
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		return err
	}
	corpus := ds.PublishedBefore(time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC))
	// Weakness-campaign granularity (finer k, as the experiments use)
	// splits the trio's wordier member off; the demo clusters at a
	// coarser granularity to surface the paper's motivating link.
	model, err := cluster.BuildModel(corpus, cluster.Config{K: len(corpus) / 16, MaxVocabulary: 600, Seed: 1})
	if err != nil {
		return err
	}
	clusters := model.Clusters
	trio := []string{"CVE-2014-0157", "CVE-2015-3988", "CVE-2016-4428"}
	for _, id := range trio {
		v := ds.ByID(id)
		c, _ := clusters.ClusterOf(id)
		fmt.Printf("%s (%v)  cluster=%d\n  %.110s...\n", v.ID, v.Products, c, v.Description)
	}
	same := clusters.SameCluster(trio[0], trio[1]) && clusters.SameCluster(trio[1], trio[2])
	fmt.Printf("clustered together: %v (the paper's motivation for description clustering)\n", same)
	fmt.Printf("pairwise description cosine: 0157/3988 %.2f, 0157/4428 %.2f, 3988/4428 %.2f\n",
		model.Cosine(trio[0], trio[1]), model.Cosine(trio[0], trio[2]), model.Cosine(trio[1], trio[2]))
	return nil
}

// fig2 reproduces Figure 2: the aggregate score modifier in each
// qualitative vulnerability state.
func fig2() error {
	fmt.Println("== Figure 2: score modifiers by age/patch/exploit state ==")
	p := core.DefaultScoreParams()
	pub := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	type state struct {
		name           string
		old, pat, expl bool
	}
	states := []state{
		{"OP", true, true, false}, {"OPE", true, true, true},
		{"NP", false, true, false}, {"NPE", false, true, true},
		{"O", true, false, false}, {"OE", true, false, true},
		{"N", false, false, false}, {"NE", false, false, true},
	}
	fmt.Printf("%-5s %-9s\n", "state", "modifier")
	for _, s := range states {
		v := &osint.Vulnerability{ID: "CVE-2018-1", Published: pub, CVSS: 1}
		if s.pat {
			v.PatchedAt = pub
		}
		if s.expl {
			v.ExploitAt = pub
		}
		now := pub
		if s.old {
			now = pub.AddDate(2, 0, 0)
		}
		fmt.Printf("%-5s %9.4f\n", s.name, p.Modifier(v, now))
	}
	fmt.Println("(paper: OP 0.37 ... NE 1.25)")
	return nil
}

// fig3 reproduces Figure 3: daily score series for the three example
// CVEs.
func fig3() error {
	fmt.Println("== Figure 3: score evolution (weekly samples) ==")
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		return err
	}
	p := core.DefaultScoreParams()
	cases := []struct {
		id   string
		days int
	}{
		{"CVE-2018-8303", 35},  // NE: exploit 17 days after publication
		{"CVE-2018-8012", 35},  // NPE: exploit then patch
		{"CVE-2016-7180", 420}, // OP: patch then decay over a year
	}
	for _, c := range cases {
		v := ds.ByID(c.id)
		if v == nil {
			return fmt.Errorf("anchor %s missing", c.id)
		}
		fmt.Printf("%s (CVSS %.1f, published %s):\n", v.ID, v.CVSS, v.Published.Format(time.DateOnly))
		step := 7
		if c.days > 100 {
			step = 60
		}
		for off := 0; off <= c.days; off += step {
			at := v.Published.AddDate(0, 0, off)
			fmt.Printf("  +%3dd  score %5.2f  (%s)\n", off, p.Score(v, at), p.StateOf(v, at))
		}
	}
	return nil
}

// fig5 reproduces Figure 5: compromised runs per month for the five
// strategies.
func fig5(runs int, seed int64) error {
	fmt.Printf("== Figure 5: compromised runs over eight months (%d runs/strategy) ==\n", runs)
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: seed})
	if err != nil {
		return err
	}
	e := &riskim.Experiment{
		Dataset:  ds,
		Universe: feeds.Replicas(),
		N:        4, F: 1,
		Runs: runs,
		Seed: seed,
	}
	results, err := e.Figure5()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s", "month")
	for _, name := range strategies.StrategyNames {
		fmt.Printf(" %9s", name)
	}
	fmt.Println()
	for _, res := range results {
		fmt.Printf("%-8s", res.Month.Format("2006-01"))
		for _, name := range strategies.StrategyNames {
			fmt.Printf(" %8.1f%%", res.Rate(name))
		}
		fmt.Printf("   (Lazarus avg reconfigs/run %.1f)\n", res.AvgReconfigs("Lazarus"))
	}
	return nil
}

// fig6 reproduces Figure 6: compromised runs under the notable 2017
// attacks.
func fig6(runs int, seed int64) error {
	fmt.Printf("== Figure 6: compromised runs under notable attacks (%d runs/strategy) ==\n", runs)
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: seed})
	if err != nil {
		return err
	}
	e := &riskim.Experiment{
		Dataset:  ds,
		Universe: feeds.Replicas(),
		N:        4, F: 1,
		Runs: runs,
		Seed: seed,
	}
	results, err := e.Figure6()
	if err != nil {
		return err
	}
	fmt.Printf("%-11s", "attack")
	for _, name := range strategies.StrategyNames {
		fmt.Printf(" %9s", name)
	}
	fmt.Println()
	for _, res := range results {
		fmt.Printf("%-11s", res.Attack)
		for _, name := range strategies.StrategyNames {
			fmt.Printf(" %8.1f%%", res.Rate(name))
		}
		fmt.Println()
	}
	return nil
}

// ablation runs the DESIGN.md §5 risk-metric ablations on the hardest
// month (May 2018): the full Lazarus metric vs clustering disabled vs
// recency weighting disabled.
func ablation(runs int, seed int64) error {
	fmt.Printf("== Ablation: Lazarus metric components, May 2018 (%d runs) ==\n", runs)
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: seed})
	if err != nil {
		return err
	}
	e := &riskim.Experiment{
		Dataset:  ds,
		Universe: feeds.Replicas(),
		N:        4, F: 1,
		Runs: runs,
		Seed: seed,
	}
	for _, month := range []time.Month{time.March, time.May} {
		res, err := e.AblationMonth(time.Date(2018, month, 1, 0, 0, 0, 0, time.UTC), nil)
		if err != nil {
			return err
		}
		fmt.Printf("%s:", res.Month.Format("2006-01"))
		for _, v := range riskim.DefaultVariants() {
			fmt.Printf("  %s=%.1f%%", v.Name, res.Rate(v.Name))
		}
		fmt.Println()
	}
	// Threshold sensitivity: fixed absolute thresholds vs adaptive.
	fmt.Println("\nthreshold sweep (May 2018, compromised %):")
	for _, thr := range []float64{0, 100, 300, 1000, 3000} {
		res, err := e.AblationMonth(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC),
			[]riskim.Variant{{Name: "lazarus", UseClusters: true, Threshold: thr}})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%.0f", thr)
		if thr == 0 {
			label = "adaptive"
		}
		fmt.Printf("  threshold %-9s compromised %5.1f%%   avg reconfigs/run %.1f\n",
			label, res.Rate("lazarus"), res.AvgReconfigs("lazarus"))
	}
	return nil
}
