package main

import (
	"context"
	"fmt"
	gonet "net"
	"time"

	"lazarus/internal/transport"
)

// netStats exercises the two real transports — not the performance model
// — and prints their counters: an in-memory burst with injected loss and
// a TCP run on loopback with one black-holed peer, demonstrating the
// non-blocking send path (a dead peer costs drops, not stalls).
func netStats() error {
	fmt.Println("== Transport counters (real send path, not the perf model) ==")
	if err := netStatsMemory(); err != nil {
		return err
	}
	return netStatsTCP()
}

func printStats(s transport.Stats) {
	fmt.Printf("  %-22s %12s %12s\n", "", "frames", "bytes")
	fmt.Printf("  %-22s %12d %12d\n", "sent", s.FramesSent, s.BytesSent)
	fmt.Printf("  %-22s %12d %12d\n", "received", s.FramesRecv, s.BytesRecv)
	fmt.Printf("  dials %d (failed %d, redials %d), write-deadline trips %d\n",
		s.Dials, s.DialFailures, s.Redials, s.WriteDeadlineTrips)
	fmt.Printf("  drops %d  (queue-full %d, inbox-full %d, auth %d, misrouted %d, write-fail %d, lossy %d)\n",
		s.Drops(), s.DropsQueueFull, s.DropsInboxFull, s.DropsAuthFail,
		s.DropsMisrouted, s.DropsWriteFail, s.DropsLossy)
}

func netStatsMemory() error {
	const (
		msgs    = 2000
		payload = 256
	)
	net := transport.NewMemory(transport.MemoryConfig{QueueDepth: 64, DropRate: 0.10, Seed: 7})
	defer net.Close()
	a, err := net.Endpoint(1)
	if err != nil {
		return err
	}
	if _, err := net.Endpoint(2); err != nil {
		return err
	}
	buf := make([]byte, payload)
	for i := 0; i < msgs; i++ {
		if err := a.Send(2, buf); err != nil {
			return err
		}
	}
	fmt.Printf("\n-- in-memory switchboard: %d×%dB burst, 10%% injected loss, inbox 64, receiver idle --\n",
		msgs, payload)
	printStats(net.Stats())
	return nil
}

func netStatsTCP() error {
	const (
		msgs     = 2000 // to the healthy peer: fits the queue, all delivered
		deadMsgs = 4000 // to the black-holed peer: overflows the queue
		payload  = 256
	)
	addrs := map[transport.NodeID]string{}
	// Two live nodes on pre-resolved loopback ports, one peer at a port
	// where nothing answers.
	for _, id := range []transport.NodeID{0, 1, 9} {
		ln, err := gonet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[id] = ln.Addr().String()
		ln.Close()
	}
	net, err := transport.NewTCP(transport.TCPConfig{
		Addrs:            addrs,
		Secret:           []byte("lazbench-net"),
		SendQueueDepth:   2048,
		DialTimeout:      200 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
		RedialBackoff:    10 * time.Millisecond,
		RedialBackoffMax: 100 * time.Millisecond,
		Seed:             1, // jitter replays across runs of this micro-benchmark
	})
	if err != nil {
		return err
	}
	defer net.Close()
	sink, err := net.Endpoint(1)
	if err != nil {
		return err
	}
	src, err := net.Endpoint(0)
	if err != nil {
		return err
	}
	// Drain the healthy peer concurrently, counting what arrives; a
	// quiet period means the wire is empty.
	received := make(chan int, 1)
	go func() {
		n := 0
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			_, err := sink.Recv(ctx)
			cancel()
			if err != nil {
				received <- n
				return
			}
			n++
		}
	}()
	buf := make([]byte, payload)
	start := time.Now()
	for i := 0; i < deadMsgs; i++ {
		if i < msgs {
			if err := src.Send(1, buf); err != nil { // healthy peer
				return err
			}
		}
		if err := src.Send(9, buf); err != nil { // black-holed peer
			return err
		}
	}
	enqueue := time.Since(start)
	var drained int
	select {
	case drained = <-received:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("healthy peer never went quiet")
	}
	fmt.Printf("\n-- TCP loopback: %d×%dB to a healthy peer interleaved with %d to a black-holed peer --\n",
		msgs, payload, deadMsgs)
	fmt.Printf("  enqueued %d sends in %v; healthy peer received %d/%d frames (wire quiet after %v)\n",
		msgs+deadMsgs, enqueue.Round(time.Microsecond), drained, msgs, time.Since(start).Round(time.Millisecond))
	printStats(net.Stats())
	fmt.Println("  (dial failures + queue-full drops are the black-holed peer shedding load —")
	fmt.Println("   every send returned immediately; no head-of-line blocking)")
	return nil
}
