package main

import (
	"fmt"
	"strings"

	"lazarus/internal/catalog"
	"lazarus/internal/perfmodel"
)

// table2 reproduces paper Table 2: the 17 deployable OS versions and the
// resources of their VMs.
func table2() error {
	fmt.Println("== Table 2: OS versions and VM configurations ==")
	fmt.Printf("%-5s %-18s %-6s %-7s\n", "ID", "Name", "Cores", "Memory")
	for _, os := range catalog.Deployable() {
		fmt.Printf("%-5s %-18s %-6d %dGB\n", os.ID, os.Name, os.VM.Cores, os.VM.MemoryGB)
	}
	return nil
}

// fig7 reproduces Figure 7: microbenchmark throughput of homogeneous
// configurations, all 17 OSes plus the bare-metal baseline.
func fig7() error {
	fmt.Println("== Figure 7: homogeneous-configuration throughput (ops/sec) ==")
	cm := perfmodel.DefaultCostModel()
	fmt.Printf("%-5s %10s %12s\n", "OS", "0/0", "1024/1024")
	ids := append([]string{"BM"}, catalog.IDs(catalog.Deployable())...)
	bm := map[string]float64{}
	for _, id := range ids {
		os, err := catalog.ByID(id)
		if err != nil {
			return err
		}
		r00, err := perfmodel.HomogeneousThroughput(os, perfmodel.Microbench00, cm)
		if err != nil {
			return err
		}
		r1k, err := perfmodel.HomogeneousThroughput(os, perfmodel.Microbench1024, cm)
		if err != nil {
			return err
		}
		if id == "BM" {
			bm["0/0"], bm["1024/1024"] = r00.Throughput, r1k.Throughput
		}
		fmt.Printf("%-5s %10.0f %12.0f   (%3.0f%% / %3.0f%% of BM)\n",
			id, r00.Throughput, r1k.Throughput,
			100*r00.Throughput/bm["0/0"], 100*r1k.Throughput/bm["1024/1024"])
	}
	return nil
}

// fig8 reproduces Figure 8: throughput of the three diverse
// configurations.
func fig8() error {
	fmt.Println("== Figure 8: diverse-configuration throughput (ops/sec) ==")
	cm := perfmodel.DefaultCostModel()
	sets := []struct {
		name string
		ids  []string
	}{
		{"fastest", perfmodel.FastestSet},
		{"mixed-families", perfmodel.MixedSet},
		{"slowest", perfmodel.SlowestSet},
	}
	bmCfg, err := perfmodel.ConfigByIDs("BM", "BM", "BM", "BM")
	if err != nil {
		return err
	}
	fmt.Printf("%-15s %-28s %10s %12s\n", "set", "members", "0/0", "1024/1024")
	all := append([]struct {
		name string
		ids  []string
	}{{name: "bare metal", ids: []string{"BM", "BM", "BM", "BM"}}}, sets...)
	for _, s := range all {
		cfg, err := perfmodel.ConfigByIDs(s.ids...)
		if err != nil {
			return err
		}
		r00, err := perfmodel.Throughput(cfg, perfmodel.Microbench00, cm)
		if err != nil {
			return err
		}
		r1k, err := perfmodel.Throughput(cfg, perfmodel.Microbench1024, cm)
		if err != nil {
			return err
		}
		fmt.Printf("%-15s %-28s %10.0f %12.0f\n",
			s.name, strings.Join(s.ids, ","), r00.Throughput, r1k.Throughput)
	}
	_ = bmCfg
	return nil
}

// fig9 reproduces Figure 9: KVS throughput during a reconfiguration, bare
// metal vs the Lazarus diverse setup.
func fig9() error {
	fmt.Println("== Figure 9: throughput during reconfiguration (YCSB 50/50, 1 kB, 500 MB state) ==")
	cm := perfmodel.DefaultCostModel()

	run := func(label string, ids []string, joinerID string, swap int) error {
		cfg, err := perfmodel.ConfigByIDs(ids...)
		if err != nil {
			return err
		}
		joiner, err := catalog.ByID(joinerID)
		if err != nil {
			return err
		}
		tl := perfmodel.DefaultTimeline(cfg, joiner, swap)
		series, events, err := perfmodel.Timeline(tl, cm)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- %s: %s, %s joins, %s leaves --\n", label,
			strings.Join(ids, ","), joinerID, ids[swap])
		for _, e := range events {
			fmt.Printf("  t=%4.0fs  %s\n", e.T.Seconds(), e.Name)
		}
		fmt.Println("  time-series (10 s buckets, ops/sec):")
		for i := 0; i < len(series); i += 10 {
			end := i + 10
			if end > len(series) {
				end = len(series)
			}
			var sum float64
			phases := map[string]bool{}
			for _, p := range series[i:end] {
				sum += p.Throughput
				if p.Phase != "steady" {
					phases[p.Phase] = true
				}
			}
			var notes []string
			for ph := range phases {
				notes = append(notes, ph)
			}
			fmt.Printf("  %3d-%3ds %8.0f  %s\n", i, end, sum/float64(end-i), strings.Join(notes, "+"))
		}
		return nil
	}
	// Bare metal homogeneous (the paper swaps an Ubuntu 14.04 replica).
	if err := run("bare metal", []string{"BM", "BM", "BM", "BM"}, "UB14", 1); err != nil {
		return err
	}
	// Lazarus diverse (paper: DE8, OS42, FE26, SO11; UB16 joins, OS42
	// leaves).
	return run("Lazarus", []string{"DE8", "OS42", "FE26", "SO11"}, "UB16", 1)
}

// fig10 reproduces Figure 10: application throughput on bare metal and
// the fastest/slowest diverse sets.
func fig10() error {
	fmt.Println("== Figure 10: application throughput (ops/sec) ==")
	cm := perfmodel.DefaultCostModel()
	apps := []perfmodel.Workload{perfmodel.KVS4k, perfmodel.SieveQ1k, perfmodel.Fabric1k}
	sets := []struct {
		name string
		ids  []string
	}{
		{name: "BM", ids: []string{"BM", "BM", "BM", "BM"}},
		{"fastest", perfmodel.FastestSet},
		{"slowest", perfmodel.SlowestSet},
	}
	fmt.Printf("%-14s", "app")
	for _, s := range sets {
		fmt.Printf(" %12s", s.name)
	}
	fmt.Println()
	for _, w := range apps {
		fmt.Printf("%-14s", w.Name)
		var bm float64
		for i, s := range sets {
			cfg, err := perfmodel.ConfigByIDs(s.ids...)
			if err != nil {
				return err
			}
			r, err := perfmodel.Throughput(cfg, w, cm)
			if err != nil {
				return err
			}
			if i == 0 {
				bm = r.Throughput
			}
			fmt.Printf(" %7.0f(%2.0f%%)", r.Throughput, 100*r.Throughput/bm)
		}
		fmt.Println()
	}
	return nil
}

// leader evaluates the paper's §9 discussion item — placing the BFT
// leader on the fastest replica — for the Figure 8 configurations.
func leaderPlacement() error {
	fmt.Println("== Leader placement (paper §9 discussion) ==")
	cm := perfmodel.DefaultCostModel()
	sets := [][]string{
		{"SO10", "UB16", "W10", "FE24"}, // slow leader, capable quorum
		append([]string(nil), perfmodel.MixedSet...),
		append([]string(nil), perfmodel.FastestSet...),
	}
	fmt.Printf("%-28s %12s %12s %-8s %s\n", "configuration", "default", "best", "leader", "gain")
	for _, ids := range sets {
		cfg, err := perfmodel.ConfigByIDs(ids...)
		if err != nil {
			return err
		}
		rep, err := perfmodel.BestLeaderPlacement(cfg, perfmodel.Microbench00, cm)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %12.0f %12.0f %-8s %+.0f%%\n",
			strings.Join(ids, ","), rep.Default.Throughput, rep.Best.Throughput,
			rep.BestLeader, rep.Gain*100)
	}
	fmt.Println("(the gain vanishes when the quorum itself contains a single-core guest)")
	return nil
}
