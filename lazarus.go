// Package lazarus is the public facade of this repository: an
// implementation of "Lazarus: Automatic Management of Diversity in BFT
// Systems" (Garcia, Bessani, Neves — Middleware 2019).
//
// Lazarus is a control plane for BFT replicated services. It continuously
// ingests vulnerability intelligence (NVD feeds, ExploitDB, vendor
// advisories), clusters vulnerability descriptions to find weaknesses
// that NVD reports against different products but that are likely
// exploitable by variations of one attack, scores every vulnerability by
// its current exploitability (CVSS adjusted by age, patch and exploit
// availability), measures the risk that a replica set shares a weakness
// (Equation 5 of the paper), and — when the risk crosses a threshold —
// replaces replicas through a trusted deployment plane while the BFT
// protocol preserves the service state (Algorithm 1).
//
// Typical embedded use:
//
//	ctrl, err := lazarus.NewController(lazarus.ControllerConfig{
//		Net:          net,                   // execution-plane network
//		App:          func() bft.Application { return kvs.New() },
//		ClientKeys:   clientKeys,
//		LTUSecret:    secret,
//		InitialVulns: records,               // or Crawler for live feeds
//	})
//	err = ctrl.Bootstrap(ctx)                // lowest-risk diverse CONFIG
//	for range time.Tick(24 * time.Hour) {
//		ctrl.RefreshIntel(ctx)               // pull feeds, re-cluster
//		ctrl.MonitorRound(ctx)               // Algorithm 1 + live swap
//	}
//
// The evaluation harnesses (risk simulation for the paper's Figures 5–6,
// the calibrated performance model for Figures 7–10) are exposed through
// the RiskExperiment driver and the internal/perfmodel package; the
// cmd/lazbench tool regenerates every table and figure.
package lazarus

import (
	"lazarus/internal/cluster"
	"lazarus/internal/controlplane"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/osint"
	"lazarus/internal/riskim"
)

// Core risk-engine types (paper §4).
type (
	// Vulnerability is one consolidated OSINT record.
	Vulnerability = osint.Vulnerability
	// Replica identifies a replica's software stack for risk purposes.
	Replica = core.Replica
	// Config is a replica set (the paper's CONFIG).
	Config = core.Config
	// ScoreParams are the Equation 1–4 constants.
	ScoreParams = core.ScoreParams
	// Intel is the assembled threat-intelligence base.
	Intel = core.Intel
	// RiskEngine evaluates Equation 5 risk.
	RiskEngine = core.RiskEngine
	// Monitor runs Algorithm 1 over a replica-set lifecycle.
	Monitor = core.Monitor
	// Decision is one monitoring round's outcome.
	Decision = core.Decision
)

// Control-plane types (paper §5).
type (
	// Controller is the Lazarus control plane.
	Controller = controlplane.Controller
	// ControllerConfig configures it.
	ControllerConfig = controlplane.Config
)

// Experiment types (paper §6).
type (
	// RiskExperiment is the Figure 5/6 simulation driver.
	RiskExperiment = riskim.Experiment
	// Dataset is a historical vulnerability corpus.
	Dataset = feeds.Dataset
)

// DefaultScoreParams returns the paper's scoring constants (Figure 2).
func DefaultScoreParams() ScoreParams { return core.DefaultScoreParams() }

// NewController builds the control plane (see ControllerConfig).
func NewController(cfg ControllerConfig) (*Controller, error) {
	return controlplane.New(cfg)
}

// NewRiskEngine assembles a risk engine from a vulnerability corpus: the
// descriptions are clustered (elbow-selected k unless cfg fixes it) and
// Equation 5 evaluates direct sharing plus cluster-inferred sharing,
// gated by description cosine similarity (same-cluster membership alone
// over-links, since K-means assigns every record somewhere).
func NewRiskEngine(corpus []*Vulnerability, params ScoreParams, clusterCfg cluster.Config) (*RiskEngine, error) {
	model, err := cluster.BuildModel(corpus, clusterCfg)
	if err != nil {
		return nil, err
	}
	intel, err := core.NewIntel(corpus, model.Clusters)
	if err != nil {
		return nil, err
	}
	intel.SetSimilarityGate(func(a, b string) bool {
		return model.Cosine(a, b) >= 0.45
	})
	return core.NewRiskEngine(intel, params)
}

// GenerateDataset produces the seeded synthetic study corpus
// (2014-01-01 … 2018-08-31 by default) with the paper's anchor CVEs
// embedded.
func GenerateDataset(seed int64) (*Dataset, error) {
	return feeds.GenerateDataset(feeds.GenConfig{Seed: seed})
}

// StudyReplicas returns the 21-OS replica universe of the paper's §6
// experiments.
func StudyReplicas() []Replica { return feeds.Replicas() }
