package lazarus

// Benchmarks, one per paper table/figure (run: go test -bench=. -benchmem).
//
// The BenchmarkFig7/Fig10 series drive the REAL replication library (four
// replicas over the in-memory transport, closed-loop clients) and report
// achieved ops/sec; absolute values reflect this host, while the paper's
// per-OS virtualization effects are reproduced by the calibrated model
// (BenchmarkModel series and cmd/lazbench). BenchmarkFig5Month runs one
// month-slot of the §6 risk simulation end to end.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/apps/ordering"
	"lazarus/internal/apps/sieveq"
	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/catalog"
	"lazarus/internal/cluster"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/perfmodel"
	"lazarus/internal/riskim"
	"lazarus/internal/transport"
	"lazarus/internal/workload"
)

// benchCluster launches a 4-replica cluster and returns n clients.
func benchCluster(b *testing.B, app bfttest.AppFactory, clients int) (*bfttest.Cluster, []workload.Invoker) {
	b.Helper()
	cl, err := bfttest.Launch(app, bfttest.Options{
		N:                  4,
		Clients:            clients,
		CheckpointInterval: 4096,
		BatchSize:          64,
		BatchDelay:         500 * time.Microsecond,
		ViewChangeTimeout:  5 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	invokers := make([]workload.Invoker, clients)
	for i := 0; i < clients; i++ {
		c, err := cl.Client(i)
		if err != nil {
			b.Fatal(err)
		}
		invokers[i] = c
	}
	return cl, invokers
}

// runBench drives b.N operations through the clients and reports ops/sec.
func runBench(b *testing.B, invokers []workload.Invoker, nextOp func(i int) []byte) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	ops := make([][]byte, b.N)
	for i := range ops {
		ops[i] = nextOp(i)
	}
	b.ResetTimer()
	res, err := workload.RunCount(ctx, invokers, ops)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d failed invocations", res.Errors)
	}
	b.ReportMetric(res.Throughput(), "ops/sec")
}

// BenchmarkFig7Microbench00 is the 0/0 microbenchmark on the real library
// (paper Figure 7, bare-metal counterpart).
func BenchmarkFig7Microbench00(b *testing.B) {
	cl, invokers := benchCluster(b, func(transport.NodeID) bft.Application {
		return workload.EchoApp{}
	}, 8)
	defer cl.Stop()
	gen, err := workload.NewMicrobench(0)
	if err != nil {
		b.Fatal(err)
	}
	runBench(b, invokers, func(int) []byte { return gen.Next() })
}

// BenchmarkFig7Microbench1024 is the 1024/1024 microbenchmark on the real
// library.
func BenchmarkFig7Microbench1024(b *testing.B) {
	cl, invokers := benchCluster(b, func(transport.NodeID) bft.Application {
		return workload.EchoApp{}
	}, 8)
	defer cl.Stop()
	gen, err := workload.NewMicrobench(1024)
	if err != nil {
		b.Fatal(err)
	}
	runBench(b, invokers, func(int) []byte { return gen.Next() })
}

// BenchmarkFig10KVS is the YCSB 50/50 4 kB workload on the replicated KVS
// (paper Figure 10, first group).
func BenchmarkFig10KVS(b *testing.B) {
	cl, invokers := benchCluster(b, func(transport.NodeID) bft.Application {
		return kvs.New()
	}, 8)
	defer cl.Stop()
	gen, err := workload.NewYCSB(workload.YCSBConfig{
		Records: 1000, ReadFraction: 0.5, ValueSize: 4096, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	runBench(b, invokers, func(int) []byte {
		op, _, err := gen.Next()
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

// BenchmarkFig10SieveQ is the 1 kB message-queue workload (paper Figure
// 10, second group); messages pass the filtering layers before
// replication.
func BenchmarkFig10SieveQ(b *testing.B) {
	cl, invokers := benchCluster(b, func(transport.NodeID) bft.Application {
		return sieveq.NewQueue()
	}, 8)
	defer cl.Stop()
	sieve := sieveq.DefaultSieve([]string{"bench"}, 2048, 1e9)
	body := make([]byte, 1024)
	runBench(b, invokers, func(i int) []byte {
		op, err := sieve.Admit(&sieveq.Message{
			Sender: "bench",
			Topic:  fmt.Sprintf("t%d", i%4),
			Body:   body,
		})
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

// BenchmarkFig10Ordering is the 1 kB transaction / 10-tx block workload on
// the BFT ordering service (paper Figure 10, third group).
func BenchmarkFig10Ordering(b *testing.B) {
	cl, invokers := benchCluster(b, func(transport.NodeID) bft.Application {
		svc, err := ordering.NewService(10)
		if err != nil {
			panic(err)
		}
		return svc
	}, 8)
	defer cl.Stop()
	payload := make([]byte, 1024)
	runBench(b, invokers, func(int) []byte {
		op, err := ordering.SubmitOp(ordering.Transaction{Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

// BenchmarkFig9Reconfiguration measures a full live replacement (boot +
// ADD + state transfer + REMOVE) on the real library (paper Figure 9's
// protocol path).
func BenchmarkFig9Reconfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, err := bfttest.Launch(func(transport.NodeID) bft.Application {
			return kvs.New()
		}, bfttest.Options{N: 4, CheckpointInterval: 8})
		if err != nil {
			b.Fatal(err)
		}
		client, err := cl.Client(0)
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := cl.Controller()
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		for k := 0; k < 20; k++ {
			op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("k%d", k), Value: make([]byte, 512)})
			if _, err := client.Invoke(ctx, op); err != nil {
				b.Fatal(err)
			}
		}
		joiner, err := cl.AddReplica(4, true)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		addOp, _ := bft.EncodeReconfigOp(bft.ReconfigOp{Add: true, Replica: 4, PubKey: cl.PublicKey(4)})
		if _, err := ctrl.Invoke(ctx, addOp); err != nil {
			b.Fatal(err)
		}
		for joiner.Stats().StateTransfers == 0 {
			time.Sleep(5 * time.Millisecond)
		}
		rmOp, _ := bft.EncodeReconfigOp(bft.ReconfigOp{Add: false, Replica: 0})
		if _, err := ctrl.Invoke(ctx, rmOp); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		cancel()
		client.Close()
		ctrl.Close()
		cl.Stop()
		b.StartTimer()
	}
}

// BenchmarkFig5Month runs one Figure 5 month-slot (reduced run count) end
// to end: clustering, table precomputation, and the five strategies.
func BenchmarkFig5Month(b *testing.B) {
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := &riskim.Experiment{
		Dataset:  ds,
		Universe: feeds.Replicas(),
		N:        4, F: 1,
		Runs: 25,
		Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunMonth(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreEq1 measures the Equation 1 score computation.
func BenchmarkScoreEq1(b *testing.B) {
	p := core.DefaultScoreParams()
	v := &Vulnerability{
		ID:        "CVE-2018-8897",
		Published: time.Date(2018, 5, 8, 0, 0, 0, 0, time.UTC),
		CVSS:      7.8,
		PatchedAt: time.Date(2018, 5, 9, 0, 0, 0, 0, time.UTC),
		ExploitAt: time.Date(2018, 5, 13, 0, 0, 0, 0, time.UTC),
	}
	now := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += p.Score(v, now)
	}
	_ = sink
}

// BenchmarkRiskEq5 measures a full Equation 5 evaluation of a 4-replica
// configuration against the study corpus.
func BenchmarkRiskEq5(b *testing.B) {
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	asof := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	corpus := ds.PublishedBefore(asof)
	engine, err := NewRiskEngine(corpus, DefaultScoreParams(),
		cluster.Config{K: len(corpus) / 8, MaxVocabulary: 600, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rs := feeds.Replicas()
	cfg := core.Config{rs[0], rs[5], rs[10], rs[15]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Risk(cfg, asof)
	}
}

// BenchmarkClusterBuild measures the clustering stage over the learning
// corpus.
func BenchmarkClusterBuild(b *testing.B) {
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	corpus := ds.PublishedBefore(time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Build(corpus, cluster.Config{K: 96, MaxVocabulary: 600, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelFig7 and friends regenerate the calibrated-model figures
// (the per-OS virtualization shape the real-library benches cannot see).
func BenchmarkModelFig7(b *testing.B) {
	cm := perfmodel.DefaultCostModel()
	oses := catalog.Deployable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, os := range oses {
			if _, err := perfmodel.HomogeneousThroughput(os, perfmodel.Microbench00, cm); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkModelFig9 regenerates the reconfiguration timeline.
func BenchmarkModelFig9(b *testing.B) {
	cm := perfmodel.DefaultCostModel()
	cfg, err := perfmodel.ConfigByIDs("DE8", "OS42", "FE26", "SO11")
	if err != nil {
		b.Fatal(err)
	}
	joiner, err := catalog.ByID("UB16")
	if err != nil {
		b.Fatal(err)
	}
	tl := perfmodel.DefaultTimeline(cfg, joiner, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := perfmodel.Timeline(tl, cm); err != nil {
			b.Fatal(err)
		}
	}
}
