// Command reconfig runs the full Lazarus control loop live: a BFT
// key-value store starts on the lowest-risk diverse replica set, a
// critical shared vulnerability is then published, and the next
// monitoring round swaps the affected replica out through the LTUs and
// the BFT reconfiguration protocol — while the service keeps answering
// and its state survives.
package main

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/controlplane"
	"lazarus/internal/feeds"
	"lazarus/internal/osint"
	"lazarus/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	now := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }

	fmt.Println("== Lazarus live reconfiguration demo ==")
	ds, err := feeds.GenerateDataset(feeds.GenConfig{
		Seed:  3,
		Start: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		return err
	}

	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	defer net.Close()
	clientPub, clientPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	clientID := transport.ClientIDBase + transport.NodeID(1)

	ctrl, err := controlplane.New(controlplane.Config{
		N:            4,
		Seed:         7,
		Clock:        clock,
		InitialVulns: ds.All(),
		Net:          net,
		App:          func() bft.Application { return kvs.New() },
		ClientKeys:   map[transport.NodeID]ed25519.PublicKey{clientID: clientPub},
		LTUSecret:    []byte("demo-ltu-secret"),
		ReplicaTuning: func(cfg *bft.ReplicaConfig) {
			cfg.CheckpointInterval = 8
			cfg.ViewChangeTimeout = 200 * time.Millisecond
		},
		Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	defer ctrl.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := ctrl.Bootstrap(ctx); err != nil {
		return err
	}
	st := ctrl.Status()
	fmt.Printf("running CONFIG: %v (risk threshold %.1f)\n", st.Config, st.Threshold)

	// Put some state in.
	client, err := ctrl.ServiceClient(clientID, clientPriv)
	if err != nil {
		return err
	}
	defer client.Close()
	for i := 0; i < 5; i++ {
		op, err := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("key%d", i), Value: []byte(fmt.Sprintf("value%d", i))})
		if err != nil {
			return err
		}
		if _, err := client.Invoke(ctx, op); err != nil {
			return err
		}
	}
	fmt.Println("service preloaded with 5 keys")

	// A critical, already-exploited vulnerability shared by two running
	// OSes hits the feeds.
	osA, err := catalog.ByID(st.Config[0])
	if err != nil {
		return err
	}
	osB, err := catalog.ByID(st.Config[1])
	if err != nil {
		return err
	}
	osC, err := catalog.ByID(st.Config[2])
	if err != nil {
		return err
	}
	bomb := &osint.Vulnerability{
		ID:          "CVE-2018-31337",
		Description: "Remote code execution in the shared packet scheduler allows unauthenticated attackers to gain kernel privileges via crafted traffic.",
		Products:    []string{osA.CPEProduct, osB.CPEProduct, osC.CPEProduct},
		Published:   now.AddDate(0, 0, -1),
		CVSS:        9.8,
		ExploitAt:   now.AddDate(0, 0, -1),
	}
	fmt.Printf("\n!! %s published: CVSS %.1f, exploited, affects %s, %s and %s\n",
		bomb.ID, bomb.CVSS, osA.ID, osB.ID, osC.ID)
	if err := ctrl.RefreshIntel(ctx, bomb); err != nil {
		return err
	}
	now = now.AddDate(0, 0, 1)

	decision, err := ctrl.MonitorRound(ctx)
	if err != nil {
		return err
	}
	if decision.Reconfigured {
		fmt.Printf("\nmonitoring round: risk %.1f -> %.1f, trigger %s\n",
			decision.RiskBefore, decision.RiskAfter, decision.Trigger)
		fmt.Printf("swapped %s out (quarantined) for %s\n", decision.Removed.ID, decision.Added.ID)
	} else {
		fmt.Println("\nmonitoring round: no reconfiguration needed")
	}
	st = ctrl.Status()
	fmt.Printf("new CONFIG: %v, quarantine: %v, membership epoch %d\n",
		st.Config, st.Quarantine, st.Epoch)

	// State survived the swap: the same client keeps its request
	// sequence numbers and simply learns the new replica set.
	var replicas []transport.NodeID
	for _, nodeID := range st.Nodes {
		replicas = append(replicas, nodeID)
	}
	client.UpdateReplicas(replicas)
	op, err := kvs.EncodeOp(kvs.Op{Kind: kvs.OpGet, Key: "key3"})
	if err != nil {
		return err
	}
	res, err := client.Invoke(ctx, op)
	if err != nil {
		return err
	}
	fmt.Printf("\npost-swap read of key3: %q (state preserved)\n", res)
	return nil
}
