// Command quickstart spins up a 4-replica BFT key-value store in-process
// and runs a few operations against it — the smallest possible end-to-end
// use of the replication library.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Lazarus quickstart: 4-replica BFT key-value store ==")
	cluster, err := bfttest.Launch(
		func(transport.NodeID) bft.Application { return kvs.New() },
		bfttest.Options{N: 4},
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()
	fmt.Printf("cluster up: n=%d, f=%d, quorum=%d\n",
		cluster.Membership.N(), cluster.Membership.F(), cluster.Membership.Quorum())

	client, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	put := func(k, v string) error {
		op, err := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: k, Value: []byte(v)})
		if err != nil {
			return err
		}
		res, err := client.Invoke(ctx, op)
		if err != nil {
			return err
		}
		fmt.Printf("PUT %-12s = %-12s -> %s\n", k, v, res)
		return nil
	}
	get := func(k string) error {
		op, err := kvs.EncodeOp(kvs.Op{Kind: kvs.OpGet, Key: k})
		if err != nil {
			return err
		}
		res, err := client.Invoke(ctx, op)
		if err != nil {
			return err
		}
		fmt.Printf("GET %-12s -> %s\n", k, res)
		return nil
	}

	for _, kv := range [][2]string{
		{"paper", "middleware-2019"},
		{"system", "lazarus"},
		{"replicas", "diverse"},
	} {
		if err := put(kv[0], kv[1]); err != nil {
			return err
		}
	}
	if err := get("system"); err != nil {
		return err
	}
	if err := get("missing-key"); err != nil {
		return err
	}

	// Every reply above was vouched for by f+1 replicas; a single
	// Byzantine replica cannot forge a result.
	fmt.Println("done: all results carried an f+1 quorum of matching replies")
	return nil
}
