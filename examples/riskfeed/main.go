// Command riskfeed demonstrates the Lazarus risk pipeline on the bundled
// historical dataset: it builds the knowledge base (vulnerability records
// + description clusters), scores every OS pair with the Equation 5
// metric, and prints the lowest- and highest-risk 4-replica
// configurations as of a chosen date.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"lazarus/internal/cluster"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/strategies"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	asof := time.Date(2018, 5, 15, 0, 0, 0, 0, time.UTC)
	fmt.Printf("== Lazarus risk pipeline, knowledge as of %s ==\n\n", asof.Format(time.DateOnly))

	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		return err
	}
	corpus := ds.PublishedBefore(asof)
	fmt.Printf("knowledge base: %d vulnerability records\n", len(corpus))

	model, err := cluster.BuildModel(corpus, cluster.Config{
		K:             len(corpus) / 8,
		MaxVocabulary: 600,
		Seed:          1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("description clustering: k=%d clusters\n\n", model.Clusters.K)

	intel, err := core.NewIntel(corpus, model.Clusters)
	if err != nil {
		return err
	}
	intel.SetSimilarityGate(func(a, b string) bool { return model.Cosine(a, b) >= 0.60 })
	engine, err := core.NewRiskEngine(intel, core.DefaultScoreParams())
	if err != nil {
		return err
	}

	// Pair risks: the most and least dangerous pairings.
	universe := feeds.Replicas()
	type pairRisk struct {
		a, b string
		risk float64
	}
	var pairs []pairRisk
	for i := 0; i < len(universe); i++ {
		for j := i + 1; j < len(universe); j++ {
			pairs = append(pairs, pairRisk{
				universe[i].ID, universe[j].ID,
				engine.PairRisk(universe[i], universe[j], asof),
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].risk > pairs[j].risk })
	fmt.Println("highest-risk OS pairs (shared weaknesses, Equation 5):")
	for _, p := range pairs[:5] {
		fmt.Printf("  %-5s + %-5s  risk %8.1f\n", p.a, p.b, p.risk)
	}
	fmt.Println("lowest-risk OS pairs:")
	for _, p := range pairs[len(pairs)-5:] {
		fmt.Printf("  %-5s + %-5s  risk %8.1f\n", p.a, p.b, p.risk)
	}

	// The configuration Algorithm 1 would start from.
	rng := rand.New(rand.NewSource(42))
	best, risk, err := strategies.GreedyMinRiskConfig(universe, 4, engine, asof, rng)
	if err != nil {
		return err
	}
	fmt.Printf("\nrecommended CONFIG (greedy minimum-risk): %v at risk %.1f\n", best.IDs(), risk)

	// Show the effect of a fresh critical CVE on the recommendation.
	fmt.Println("\nscore evolution of CVE-2018-8897 (MOV SS, the May 2018 anchor):")
	v := ds.ByID("CVE-2018-8897")
	params := core.DefaultScoreParams()
	for _, off := range []int{0, 1, 5, 30, 365} {
		at := v.Published.AddDate(0, 0, off)
		fmt.Printf("  +%3dd  score %.2f (state %s)\n",
			off, params.Score(v, at), params.StateOf(v, at))
	}
	return nil
}
