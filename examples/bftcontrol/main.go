// Command bftcontrol demonstrates the decentralized control plane the
// paper outlines in §5.3: the controller state itself runs as a
// BFT-replicated service (the Directory), controller replicas derive
// shared randomness through an ordered commit-reveal beacon, every
// replica computes the same Algorithm 1 decision from that seed, and the
// node LTUs poll the directory — acting only on commands that f+1
// controller replicas vouch for.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/cluster"
	"lazarus/internal/controlplane"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/ltu"
	"lazarus/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Lazarus decentralized control plane (paper §5.3) ==")

	// The controller group: 4 replicas running the Directory state
	// machine over the BFT library.
	group, err := bfttest.Launch(func(transport.NodeID) bft.Application {
		d, err := controlplane.NewDirectory(4, 1)
		if err != nil {
			panic(err) // static sizes, cannot fail
		}
		return d
	}, bfttest.Options{N: 4})
	if err != nil {
		return err
	}
	defer group.Stop()
	fmt.Println("controller group up: n=4, f=1 (Directory replicated via BFT)")

	client, err := group.Client(0)
	if err != nil {
		return err
	}
	defer client.Close()
	dir := controlplane.NewDirectoryClient(client)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: distributed randomness. Each controller replica commits
	// H(share), then reveals; both phases are ordered through the BFT
	// log, so a coalition of f cannot bias the output after seeing
	// honest commitments.
	const round = 1
	secrets := [][]byte{[]byte("ctrl-0"), []byte("ctrl-1"), []byte("ctrl-2"), []byte("ctrl-3")}
	shares := make([]controlplane.BeaconShare, len(secrets))
	for i, secret := range secrets {
		shares[i] = controlplane.DeriveShare(secret, round, i)
		if err := dir.BeaconCommit(ctx, round, i, shares[i].Commitment()); err != nil {
			return err
		}
	}
	fmt.Println("beacon: 4 commitments ordered")
	var seed []byte
	for i := range shares {
		out, err := dir.BeaconReveal(ctx, shares[i])
		if err != nil {
			return err
		}
		if out != nil && seed == nil {
			seed = out
			fmt.Printf("beacon: seed fixed after %d reveals: %x...\n", i+1, seed[:8])
		}
	}

	// Phase 2: every controller replica independently computes the SAME
	// Algorithm 1 decision from the shared seed and knowledge base.
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		return err
	}
	asof := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	corpus := ds.PublishedBefore(asof)
	model, err := cluster.BuildModel(corpus, cluster.Config{K: len(corpus) / 8, MaxVocabulary: 600, Seed: 1})
	if err != nil {
		return err
	}
	intel, err := core.NewIntel(corpus, model.Clusters)
	if err != nil {
		return err
	}
	intel.SetSimilarityGate(func(a, b string) bool { return model.Cosine(a, b) >= 0.45 })
	engine, err := core.NewRiskEngine(intel, core.DefaultScoreParams())
	if err != nil {
		return err
	}
	universe := feeds.Replicas()
	config := core.Config(universe[:4]) // three Ubuntus + OpenSuse: risky on purpose
	pool := universe[4:]
	threshold := engine.Risk(config, asof) * 0.8 // force Algorithm 1 to fire
	fmt.Printf("running CONFIG %v at risk %.1f (threshold %.1f)\n",
		config.IDs(), engine.Risk(config, asof), threshold)

	var recorded controlplane.DirDecision
	for member := 0; member < 4; member++ {
		decision, err := controlplane.ReplicatedDecision(round, seed, engine, config, pool, threshold, asof)
		if err != nil {
			return err
		}
		dec := controlplane.DirDecision{
			Round:     round,
			RemovedOS: decision.Removed.ID,
			AddedOS:   decision.Added.ID,
		}
		got, err := dir.Decide(ctx, dec)
		if err != nil {
			return err
		}
		recorded = got
		fmt.Printf("controller replica %d proposes %s -> %s; directory records %s -> %s\n",
			member, dec.RemovedOS, dec.AddedOS, got.RemovedOS, got.AddedOS)
	}

	// Phase 3: the affected node's LTU polls the directory and acts only
	// on the f+1-vouched command stream.
	node := transport.NodeID(7)
	if _, err := dir.Enqueue(ctx, node, controlplane.DirCommand{
		Action: ltu.ActionPowerOn, OSID: recorded.AddedOS, Joining: true,
	}); err != nil {
		return err
	}
	driver := &printDriver{}
	poller, err := controlplane.NewPollingLTU(node, dir, driver)
	if err != nil {
		return err
	}
	applied, err := poller.Poll(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("node %d LTU polled the directory and applied %d command(s)\n", node, applied)
	fmt.Println("done: no single controller machine could have forged any step above")
	return nil
}

// printDriver narrates LTU actions.
type printDriver struct{}

func (printDriver) PowerOn(osID string, joining bool) error {
	fmt.Printf("  LTU: power-on %s (joining=%v)\n", osID, joining)
	return nil
}

func (printDriver) PowerOff() error {
	fmt.Println("  LTU: power-off")
	return nil
}
