// Command blockchain runs the Fabric-style BFT ordering service on a
// 4-replica group: clients submit transactions, the replicated service
// orders them into hash-chained blocks, and the block receiver fetches
// and verifies the ledger.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lazarus/internal/apps/ordering"
	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== BFT ordering service (Hyperledger-Fabric style) ==")
	const blockSize = 10
	cluster, err := bfttest.Launch(
		func(transport.NodeID) bft.Application {
			svc, err := ordering.NewService(blockSize)
			if err != nil {
				panic(err) // static config, cannot fail
			}
			return svc
		},
		bfttest.Options{N: 4},
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	client, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Submit 35 transactions of ~1 kB (the paper's §7.4 parameters:
	// 1 kB transactions, blocks of 10).
	payload := make([]byte, 1024)
	for i := 0; i < 35; i++ {
		copy(payload, fmt.Sprintf("tx-%03d|", i))
		op, err := ordering.SubmitOp(ordering.Transaction{Payload: append([]byte(nil), payload...)})
		if err != nil {
			return err
		}
		if _, err := client.Invoke(ctx, op); err != nil {
			return err
		}
	}
	fmt.Println("submitted 35 transactions of 1 kB")

	// Fetch and verify the ledger.
	fetchOp, err := ordering.FetchOp(1)
	if err != nil {
		return err
	}
	res, err := client.Invoke(ctx, fetchOp)
	if err != nil {
		return err
	}
	blocks, err := ordering.DecodeBlocks(res)
	if err != nil {
		return err
	}
	if err := ordering.VerifyChain(blocks); err != nil {
		return fmt.Errorf("ledger verification failed: %w", err)
	}
	fmt.Printf("ledger verified: %d blocks, hash chain intact\n", len(blocks))
	for _, b := range blocks {
		h := b.Hash()
		fmt.Printf("  block %d: %d txs, hash %x...\n", b.Number, len(b.Transactions), h[:6])
	}
	fmt.Printf("(5 transactions below the %d-tx block size remain pending)\n", blockSize)
	return nil
}
